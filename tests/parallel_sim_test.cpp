#include <gtest/gtest.h>

#include <tuple>

#include "memfront/core/experiment.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/stats.hpp"

namespace memfront {
namespace {

ExperimentSetup basic_setup(const Problem& p, index_t nprocs) {
  ExperimentSetup setup;
  setup.nprocs = nprocs;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  return setup;
}

class SingleProcParity
    : public ::testing::TestWithParam<std::tuple<ProblemId, OrderingKind>> {};

TEST_P(SingleProcParity, MatchesSequentialAnalysisPeak) {
  // On one processor the simulator must execute the exact Liu-ordered
  // depth-first traversal, so its measured peak equals the analysis peak.
  const auto [pid, kind] = GetParam();
  const Problem p = make_problem(pid, 0.25);
  ExperimentSetup setup = basic_setup(p, 1);
  setup.ordering = kind;
  const ExperimentOutcome outcome = run_experiment(p.matrix, setup);
  EXPECT_EQ(outcome.max_stack_peak, outcome.sequential_peak)
      << problem_name(pid) << "/" << ordering_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    ProblemsTimesOrderings, SingleProcParity,
    ::testing::Combine(::testing::Values(ProblemId::kMsdoor,
                                         ProblemId::kTwotone,
                                         ProblemId::kXenon2),
                       ::testing::Values(OrderingKind::kAmd,
                                         OrderingKind::kAmf,
                                         OrderingKind::kNestedDissection)),
    [](const auto& info) {
      return problem_name(std::get<0>(info.param)) + std::string("_") +
             ordering_name(std::get<1>(info.param));
    });

TEST(ParallelSim, DeterministicAcrossRuns) {
  const Problem p = make_problem(ProblemId::kXenon2, 0.3);
  const ExperimentSetup setup = basic_setup(p, 16);
  const ExperimentOutcome a = run_experiment(p.matrix, setup);
  const ExperimentOutcome b = run_experiment(p.matrix, setup);
  EXPECT_EQ(a.max_stack_peak, b.max_stack_peak);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.parallel.messages, b.parallel.messages);
}

class AllStrategiesComplete
    : public ::testing::TestWithParam<
          std::tuple<SlaveStrategy, TaskStrategy, ProblemId>> {};

TEST_P(AllStrategiesComplete, RunsToCompletion) {
  const auto [slave, task, pid] = GetParam();
  const Problem p = make_problem(pid, 0.3);
  ExperimentSetup setup = basic_setup(p, 8);
  setup.slave_strategy = slave;
  setup.task_strategy = task;
  const ExperimentOutcome o = run_experiment(p.matrix, setup);
  EXPECT_GT(o.max_stack_peak, 0);
  EXPECT_GT(o.makespan, 0.0);
  // Work conservation: factor entries across processors equal the tree's.
  count_t factors = 0;
  for (const auto& pr : o.parallel.procs) factors += pr.factor_entries;
  PreparedExperiment prepared = prepare_experiment(p.matrix, setup);
  EXPECT_EQ(factors, prepared.analysis->tree.total_factor_entries());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllStrategiesComplete,
    ::testing::Combine(::testing::Values(SlaveStrategy::kWorkload,
                                         SlaveStrategy::kMemory,
                                         SlaveStrategy::kMemoryImproved),
                       ::testing::Values(TaskStrategy::kLifo,
                                         TaskStrategy::kMemoryAware),
                       ::testing::Values(ProblemId::kTwotone,
                                         ProblemId::kMsdoor)),
    [](const auto& info) {
      std::string name = slave_strategy_name(std::get<0>(info.param));
      name += "_";
      name += task_strategy_name(std::get<1>(info.param));
      name += "_";
      name += problem_name(std::get<2>(info.param));
      for (char& c : name)
        if (c == '+' || c == '-') c = '_';
      return name;
    });

TEST(ParallelSim, Type2NodesExerciseSlaveSelection) {
  const Problem p = make_problem(ProblemId::kBmwCra1, 0.4);
  ExperimentSetup setup = basic_setup(p, 16);
  const ExperimentOutcome o = run_experiment(p.matrix, setup);
  EXPECT_GT(o.parallel.type2_nodes_run, 0);
  EXPECT_GT(o.parallel.messages, 0);
  index_t slave_tasks = 0;
  for (const auto& pr : o.parallel.procs) slave_tasks += pr.slave_tasks_run;
  EXPECT_GT(slave_tasks, 0);
}

TEST(ParallelSim, MoreProcessorsFasterMakespan) {
  const Problem p = make_problem(ProblemId::kBmwCra1, 0.4);
  const ExperimentOutcome p1 = run_experiment(p.matrix, basic_setup(p, 1));
  const ExperimentOutcome p8 = run_experiment(p.matrix, basic_setup(p, 8));
  EXPECT_LT(p8.makespan, p1.makespan);
}

TEST(ParallelSim, WorkIsSpreadAcrossProcessors) {
  const Problem p = make_problem(ProblemId::kXenon2, 0.4);
  const ExperimentOutcome o = run_experiment(p.matrix, basic_setup(p, 8));
  index_t active = 0;
  for (const auto& pr : o.parallel.procs)
    if (pr.flops_done > 0) ++active;
  EXPECT_EQ(active, 8);
}

TEST(ParallelSim, TraceRecordsMemoryEvolution) {
  const Problem p = make_problem(ProblemId::kTwotone, 0.25);
  Trace trace;
  run_experiment(p.matrix, basic_setup(p, 4), &trace);
  EXPECT_GT(trace.samples().size(), 100u);
  // Samples are time-monotone.
  for (std::size_t k = 1; k < trace.samples().size(); ++k)
    EXPECT_GE(trace.samples()[k].time, trace.samples()[k - 1].time);
  // Every processor appears.
  std::vector<bool> seen(4, false);
  for (const auto& s : trace.samples())
    seen[static_cast<std::size_t>(s.proc)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ParallelSim, PeakNeverBelowBiggestActivation) {
  // Lower bound sanity: some node's activation memory must be reached.
  const Problem p = make_problem(ProblemId::kUltrasound3, 0.3);
  ExperimentSetup setup = basic_setup(p, 8);
  const PreparedExperiment prepared = prepare_experiment(p.matrix, setup);
  count_t biggest = 0;
  for (index_t i = 0; i < prepared.analysis->tree.num_nodes(); ++i) {
    if (prepared.mapping.type[static_cast<std::size_t>(i)] == NodeType::kType1)
      biggest = std::max(biggest, prepared.analysis->tree.front_entries(i));
  }
  const ExperimentOutcome o = run_prepared(prepared, setup);
  EXPECT_GE(o.max_stack_peak, biggest);
}

TEST(ParallelSim, StalenessMattersForMemoryStrategy) {
  // With an enormous information delay the memory strategy degrades (it
  // sees ancient snapshots, Figure 5). Any single instance is noisy, so
  // the property is asserted on the aggregate peak over several cases.
  double fresh_total = 0.0, stale_total = 0.0;
  for (ProblemId pid : {ProblemId::kXenon2, ProblemId::kUltrasound3,
                        ProblemId::kMsdoor}) {
    const Problem p = make_problem(pid, 0.35);
    for (OrderingKind kind :
         {OrderingKind::kNestedDissection, OrderingKind::kAmd}) {
      ExperimentSetup fresh = basic_setup(p, 16);
      fresh.ordering = kind;
      fresh.slave_strategy = SlaveStrategy::kMemory;
      fresh.machine.info_delay = 0.0;
      ExperimentSetup stale = fresh;
      stale.machine.info_delay = 1e9;  // effectively time-zero knowledge
      fresh_total +=
          static_cast<double>(run_experiment(p.matrix, fresh).max_stack_peak);
      stale_total +=
          static_cast<double>(run_experiment(p.matrix, stale).max_stack_peak);
    }
  }
  EXPECT_LE(fresh_total, stale_total * 1.02);
}

TEST(ParallelSim, SplitTreeRunsAndKeepsWorkConserved) {
  const Problem p = make_problem(ProblemId::kPre2, 0.3);
  ExperimentSetup setup = basic_setup(p, 16);
  setup.ordering = OrderingKind::kAmf;
  setup.split_threshold = 30'000;
  const PreparedExperiment prepared = prepare_experiment(p.matrix, setup);
  EXPECT_GT(prepared.analysis->num_split_nodes, 0);
  const ExperimentOutcome o = run_prepared(prepared, setup);
  count_t factors = 0;
  for (const auto& pr : o.parallel.procs) factors += pr.factor_entries;
  EXPECT_EQ(factors, prepared.analysis->tree.total_factor_entries());
}

TEST(ParallelSim, BusyTimeBoundedByMakespan) {
  const Problem p = make_problem(ProblemId::kMsdoor, 0.3);
  const ExperimentOutcome o = run_experiment(p.matrix, basic_setup(p, 8));
  for (const auto& pr : o.parallel.procs)
    EXPECT_LE(pr.busy_time, o.makespan * 1.0001);
}

}  // namespace
}  // namespace memfront
