// The thread pool under the experiment pipeline, and the property the
// whole parallel-sweep design rests on: simulations are deterministic
// and self-contained, so a sweep run on N threads is bit-identical to
// the same sweep run serially.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bench_common.hpp"
#include "memfront/support/parallel_for.hpp"

namespace memfront {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleWorkerRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i % 7 == 3) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelMap, GathersResultsInInputOrder) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<long> out = parallel_map(
      items, [](int v) { return static_cast<long>(v) * v; }, 4);
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<long>(i) * static_cast<long>(i));
}

TEST(DefaultThreadCount, IsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

// ---- the determinism contract of the parallel sweep ------------------------

TEST(ParallelSweep, MatchesSerialSweepBitForBit) {
  // The same Table-1 sweep built serially and on 4 threads: every leg's
  // analysis and in-core run must agree down to the last ulp of the
  // makespan, in the same order — the parallel harness may only change
  // wall-clock time, never results.
  const double scale = 0.2;
  const index_t nprocs = 4;
  const std::vector<bench::BudgetedCase> serial =
      bench::collect_budgeted_cases(scale, nprocs, /*nthreads=*/1);
  const std::vector<bench::BudgetedCase> parallel =
      bench::collect_budgeted_cases(scale, nprocs, /*nthreads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const bench::BudgetedCase& s = serial[i];
    const bench::BudgetedCase& p = parallel[i];
    EXPECT_EQ(s.problem.name, p.problem.name);
    EXPECT_EQ(s.memory_strategy, p.memory_strategy);
    EXPECT_EQ(s.incore.max_stack_peak, p.incore.max_stack_peak);
    EXPECT_EQ(s.incore.makespan, p.incore.makespan);  // bit-identical
    EXPECT_EQ(s.incore.parallel.messages, p.incore.parallel.messages);
    EXPECT_EQ(s.incore.parallel.comm_entries,
              p.incore.parallel.comm_entries);
    EXPECT_EQ(s.incore.parallel.events_processed,
              p.incore.parallel.events_processed);
    EXPECT_EQ(s.ooc_setup.ooc.budget, p.ooc_setup.ooc.budget);
  }
}

TEST(ParallelSweep, BudgetedRunsMatchSerialBitForBit) {
  // And the budgeted OOC leg on top of the shared preparation: run each
  // case's 1.2x-budget simulation serially and in parallel; compare the
  // full I/O accounting, not just the makespan.
  const std::vector<bench::BudgetedCase> cases =
      bench::collect_budgeted_cases(0.2, 4, /*nthreads=*/2);
  std::vector<ExperimentOutcome> serial(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i)
    serial[i] = run_prepared(*cases[i].prepared, cases[i].ooc_setup);
  std::vector<ExperimentOutcome> parallel(cases.size());
  parallel_for(
      cases.size(),
      [&](std::size_t i) {
        parallel[i] = run_prepared(*cases[i].prepared, cases[i].ooc_setup);
      },
      4);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(serial[i].makespan, parallel[i].makespan);
    EXPECT_EQ(serial[i].max_stack_peak, parallel[i].max_stack_peak);
    EXPECT_EQ(serial[i].parallel.ooc_factor_write_entries,
              parallel[i].parallel.ooc_factor_write_entries);
    EXPECT_EQ(serial[i].parallel.ooc_spill_entries,
              parallel[i].parallel.ooc_spill_entries);
    EXPECT_EQ(serial[i].parallel.ooc_stall_time,
              parallel[i].parallel.ooc_stall_time);
    EXPECT_EQ(serial[i].parallel.io_events, parallel[i].parallel.io_events);
  }
}

}  // namespace
}  // namespace memfront
