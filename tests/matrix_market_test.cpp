// Malformed-input corpus of the matrix-market reader: every corrupt,
// truncated, or overflowing file must surface as a structured
// invalid_input error carrying the failing 1-based line — never as a
// crash, a silent garbage matrix, or an uncategorized exception. The
// "mm.truncate" fault site additionally cuts healthy streams short at
// seed-chosen points to prove mid-file truncation is always clean.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "memfront/sparse/matrix_market.hpp"
#include "memfront/support/fault.hpp"
#include "memfront/support/status.hpp"

namespace memfront {
namespace {

constexpr const char* kGood =
    "%%MatrixMarket matrix coordinate real general\n"
    "3 3 4\n"
    "1 1 2.0\n"
    "2 2 3.0\n"
    "3 3 4.0\n"
    "3 1 -1.0\n";

/// Parses `text`, expecting an InvalidInputError; returns it for
/// payload checks.
InvalidInputError parse_expecting_error(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_matrix_market(in);
  } catch (const InvalidInputError& e) {
    return e;
  }
  ADD_FAILURE() << "no InvalidInputError from: " << text.substr(0, 60);
  return InvalidInputError("unreached");
}

TEST(MatrixMarketErrors, GoodFileStillParses) {
  std::istringstream in(kGood);
  const MatrixMarketData data = read_matrix_market(in);
  EXPECT_EQ(data.matrix.nrows(), 3);
  EXPECT_EQ(data.matrix.nnz(), 4);
  EXPECT_FALSE(data.declared_symmetric);
}

TEST(MatrixMarketErrors, EmptyStream) {
  const auto e = parse_expecting_error("");
  EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  EXPECT_NE(std::string(e.what()).find("empty stream"), std::string::npos);
}

TEST(MatrixMarketErrors, BadBanner) {
  const auto e = parse_expecting_error("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_EQ(e.context().input_line, 1);
  EXPECT_NE(std::string(e.what()).find("banner"), std::string::npos);
}

TEST(MatrixMarketErrors, ArrayFormatRejected) {
  const auto e =
      parse_expecting_error("%%MatrixMarket matrix array real general\n");
  EXPECT_NE(std::string(e.what()).find("coordinate"), std::string::npos);
}

TEST(MatrixMarketErrors, UnsupportedField) {
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
}

TEST(MatrixMarketErrors, UnsupportedSymmetry) {
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n");
}

TEST(MatrixMarketErrors, MissingSizeLine) {
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n% only comments\n");
  EXPECT_NE(std::string(e.what()).find("size line"), std::string::npos);
}

TEST(MatrixMarketErrors, UnparsableSizeLine) {
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\nthree by three\n");
  EXPECT_EQ(e.context().input_line, 2);
}

TEST(MatrixMarketErrors, NonPositiveDimensions) {
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n0 3 1\n1 1 1.0\n");
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 -1 1\n1 1 1.0\n");
}

TEST(MatrixMarketErrors, DimensionOverflowsIndexType) {
  // 2^33 rows cannot be held by the 32-bit index type: reject at the
  // size line instead of silently wrapping.
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n8589934592 3 1\n");
  EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
}

TEST(MatrixMarketErrors, EntryCountExceedsDenseSize) {
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 5\n"
      "1 1 1\n1 2 1\n2 1 1\n2 2 1\n1 1 1\n");
  EXPECT_NE(std::string(e.what()).find("dense"), std::string::npos);
}

TEST(MatrixMarketErrors, TruncatedEntryListReportsProgress) {
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 4\n"
      "1 1 2.0\n2 2 3.0\n");
  const std::string what = e.what();
  EXPECT_NE(what.find("truncated"), std::string::npos);
  EXPECT_NE(what.find("2 of 4"), std::string::npos);
  EXPECT_EQ(e.context().input_line, 4);  // last line successfully read
}

TEST(MatrixMarketErrors, UnparsableEntry) {
  const auto e = parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
      "1 1 2.0\nnot an entry\n");
  EXPECT_EQ(e.context().input_line, 4);
}

TEST(MatrixMarketErrors, EntryIndexOutOfRange) {
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n");
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 0 1.0\n");
}

TEST(MatrixMarketErrors, NonFiniteValueRejected) {
  // "nan" either fails the numeric parse or the finiteness screen
  // (implementation-dependent); both must land on invalid_input.
  (void)parse_expecting_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 nan\n");
}

TEST(MatrixMarketErrors, StillCatchableAsStdInvalidArgument) {
  // The pre-taxonomy contract (sparse_test's RejectsGarbage) must hold:
  // every reader failure is a std::invalid_argument.
  std::istringstream in("garbage\n");
  EXPECT_THROW((void)read_matrix_market(in), std::invalid_argument);
}

#if MEMFRONT_FAULTS
TEST(MatrixMarketErrors, InjectedTruncationIsAlwaysClean) {
  // Cut the stream short at seed-chosen lines: every schedule must end
  // in a structured invalid_input (or parse fine when no line fires) —
  // never a garbage matrix.
  int injected_runs = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    fault::ScopedPlan plan(
        {.seed = seed, .period = 0, .overrides = {{"mm.truncate", 3}}});
    std::istringstream in(kGood);
    try {
      const MatrixMarketData data = read_matrix_market(in);
      EXPECT_EQ(data.matrix.nnz(), 4);  // untruncated parses are intact
    } catch (const InvalidInputError&) {
      ++injected_runs;
    }
  }
  EXPECT_GT(injected_runs, 0) << "no seed ever truncated";
  EXPECT_LT(injected_runs, 32) << "every seed truncated at line one";
}

TEST(MatrixMarketErrors, TruncationScheduleReplays) {
  // Equal seeds replay equal schedules: the same seed must fail (or
  // succeed) identically across arms.
  for (std::uint64_t seed : {0ull, 7ull, 23ull}) {
    std::string first;
    for (int round = 0; round < 2; ++round) {
      fault::ScopedPlan plan(
          {.seed = seed, .period = 0, .overrides = {{"mm.truncate", 2}}});
      std::istringstream in(kGood);
      std::string outcome = "ok";
      try {
        (void)read_matrix_market(in);
      } catch (const InvalidInputError& e) {
        outcome = e.what();
      }
      if (round == 0)
        first = outcome;
      else
        EXPECT_EQ(first, outcome) << "seed " << seed;
    }
  }
}
#endif  // MEMFRONT_FAULTS

}  // namespace
}  // namespace memfront
