// Golden-result pins for the engine/policy refactor.
//
// The PR-1 simulator (one monolithic class) produced these exact
// ParallelResults for every Table 1 problem under both dynamic
// strategies; the layered engine must reproduce them bit-for-bit — the
// discrete-event queue is deterministic (FIFO at equal timestamps), so
// any deviation, down to the last ulp of the makespan, means a
// scheduling decision moved. Makespans are hex floats for exactness.
#include <gtest/gtest.h>

#include <tuple>

#include "memfront/core/experiment.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

struct Golden {
  ProblemId id;
  bool memory_strategy;
  count_t max_stack_peak;
  double makespan;
  count_t messages;
  count_t comm_entries;
  index_t type2_nodes;
};

// Captured at scale 0.25, 8 processors, nested dissection, from the
// pre-refactor simulator (PR 1, commit 111257f).
constexpr Golden kGolden[] = {
    {ProblemId::kBmwCra1, false, 524, 0x1.cadbe47568958p-14, 56, 4838, 4},
    {ProblemId::kBmwCra1, true, 524, 0x1.cbeec533eb02ep-14, 52, 4813, 4},
    {ProblemId::kGupta3, false, 22366, 0x1.0ea45d97e0b1ep-8, 32, 198576, 0},
    {ProblemId::kGupta3, true, 22366, 0x1.0ea45d97e0b1ep-8, 32, 198576, 0},
    {ProblemId::kMsdoor, false, 9888, 0x1.7cc1d0221f6d5p-10, 90, 124105, 10},
    {ProblemId::kMsdoor, true, 9888, 0x1.970f3f7cdc636p-10, 117, 123190, 10},
    {ProblemId::kShip003, false, 1860, 0x1.61614c7ebc513p-12, 78, 28018, 6},
    {ProblemId::kShip003, true, 1582, 0x1.74c1b7b4a67f2p-12, 83, 27777, 6},
    {ProblemId::kPre2, false, 1713041, 0x1.0ed8394fe070ap+0, 185, 11741515,
     2},
    {ProblemId::kPre2, true, 1713041, 0x1.3b3f2749e84dep+0, 179, 11741515,
     2},
    {ProblemId::kTwotone, false, 87336, 0x1.5d187690cd649p-6, 219, 659075,
     8},
    {ProblemId::kTwotone, true, 87336, 0x1.2b439d8e9bb9ap-6, 229, 646904, 8},
    {ProblemId::kUltrasound3, false, 6068, 0x1.248592c8e75c6p-11, 65, 67400,
     4},
    {ProblemId::kUltrasound3, true, 6068, 0x1.4d56d37ef632dp-11, 60, 67458,
     4},
    {ProblemId::kXenon2, false, 6277, 0x1.4e3a0e8872c49p-11, 73, 69300, 5},
    {ProblemId::kXenon2, true, 5289, 0x1.7c77fe46f5e66p-11, 77, 70525, 5},
};

class GoldenResults : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenResults, RefactoredEngineReproducesPreRefactorRun) {
  const Golden& g = GetParam();
  const Problem p = make_problem(g.id, 0.25);
  ExperimentSetup setup;
  setup.nprocs = 8;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  if (g.memory_strategy) {
    setup.slave_strategy = SlaveStrategy::kMemoryImproved;
    setup.task_strategy = TaskStrategy::kMemoryAware;
  }
  const ExperimentOutcome o = run_experiment(p.matrix, setup);
  EXPECT_EQ(o.max_stack_peak, g.max_stack_peak);
  EXPECT_EQ(o.makespan, g.makespan);  // bit-identical, not approximately
  EXPECT_EQ(o.parallel.messages, g.messages);
  EXPECT_EQ(o.parallel.comm_entries, g.comm_entries);
  EXPECT_EQ(o.parallel.type2_nodes_run, g.type2_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblemsBothStrategies, GoldenResults, ::testing::ValuesIn(kGolden),
    [](const auto& info) {
      return problem_name(info.param.id) +
             std::string(info.param.memory_strategy ? "_memory"
                                                    : "_workload");
    });

// ---- out-of-core mode ------------------------------------------------------
//
// Same pin for the OOC execution path (admission-drain at a budget of
// 1.2x the in-core peak): the typed-event rewrite of the disk-landing
// pipeline (OocLanding events + write FIFOs replacing shared_ptr
// closures) must not move a single write, spill or stall.

struct OocGolden {
  ProblemId id;
  bool memory_strategy;
  count_t max_stack_peak;
  double makespan;
  count_t factor_write_entries;
  count_t spill_entries;
  count_t reload_entries;
  double stall_time;
};

// Captured at scale 0.25, 8 processors, nested dissection, budget =
// in-core peak + peak/5, from the pre-rewrite engine (PR 2, commit
// 46af137).
constexpr OocGolden kOocGolden[] = {
    {ProblemId::kBmwCra1, false, 596, 0x1.494377c6578a2p-8, 2187, 0, 0,
     0x1.7bcfaf2a4f89dp-9},
    {ProblemId::kBmwCra1, true, 623, 0x1.483df3f8d80ffp-8, 2187, 0, 0,
     0x1.f120692c13843p-10},
    {ProblemId::kGupta3, false, 22366, 0x1.98a1aa92c3c52p-8, 113670, 0, 0,
     0x0p+0},
    {ProblemId::kGupta3, true, 22366, 0x1.98a1aa92c3c52p-8, 113670, 0, 0,
     0x0p+0},
    {ProblemId::kMsdoor, false, 11848, 0x1.3a905ae7be50fp-6, 115624, 0, 0,
     0x1.41a3e55e245ecp-5},
    {ProblemId::kMsdoor, true, 11848, 0x1.5b5c3e91ad896p-6, 115624, 0, 0,
     0x1.254f74a9c27e1p-5},
    {ProblemId::kShip003, false, 2198, 0x1.072a0b165e913p-7, 15183, 0, 0,
     0x1.574c331a9ac72p-8},
    {ProblemId::kShip003, true, 1840, 0x1.d01c46a168dfcp-8, 15183, 0, 0,
     0x1.63cb274173a3fp-9},
    {ProblemId::kPre2, false, 1836881, 0x1.1020d39d7f0ap+0, 5922334, 0, 0,
     0x0p+0},
    {ProblemId::kPre2, true, 1836746, 0x1.3c87c19786e74p+0, 5922334, 0, 0,
     0x0p+0},
    {ProblemId::kTwotone, false, 104169, 0x1.c62469c1ba9ffp-5, 572188, 0, 0,
     0x1.52c54021bf53cp-7},
    {ProblemId::kTwotone, true, 104169, 0x1.dfcf0002da24ep-5, 572188, 0, 0,
     0x1.8175369f09ac5p-7},
    {ProblemId::kUltrasound3, false, 6928, 0x1.903c0d4c6ec38p-8, 32288, 0, 0,
     0x1.c7ed58cd3a74cp-11},
    {ProblemId::kUltrasound3, true, 6928, 0x1.9018917157055p-8, 32288, 0, 0,
     0x0p+0},
    {ProblemId::kXenon2, false, 7422, 0x1.085b7e55f14e4p-7, 38061, 0, 0,
     0x1.a710ae2baa865p-10},
    {ProblemId::kXenon2, true, 5781, 0x1.0862caa5802ccp-7, 38061, 0, 0,
     0x1.fa0547c61adf8p-10},
};

class OocGoldenResults : public ::testing::TestWithParam<OocGolden> {};

TEST_P(OocGoldenResults, RewrittenEngineReproducesPreRewriteOocRun) {
  const OocGolden& g = GetParam();
  const Problem p = make_problem(g.id, 0.25);
  ExperimentSetup setup;
  setup.nprocs = 8;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  if (g.memory_strategy) {
    setup.slave_strategy = SlaveStrategy::kMemoryImproved;
    setup.task_strategy = TaskStrategy::kMemoryAware;
  }
  const ExperimentOutcome incore = run_experiment(p.matrix, setup);
  setup.ooc.enabled = true;
  setup.ooc.budget = incore.max_stack_peak + incore.max_stack_peak / 5;
  const ExperimentOutcome o = run_experiment(p.matrix, setup);
  EXPECT_EQ(o.max_stack_peak, g.max_stack_peak);
  EXPECT_EQ(o.makespan, g.makespan);  // bit-identical, not approximately
  EXPECT_EQ(o.parallel.ooc_factor_write_entries, g.factor_write_entries);
  EXPECT_EQ(o.parallel.ooc_spill_entries, g.spill_entries);
  EXPECT_EQ(o.parallel.ooc_reload_entries, g.reload_entries);
  EXPECT_EQ(o.parallel.ooc_stall_time, g.stall_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblemsBothStrategies, OocGoldenResults,
    ::testing::ValuesIn(kOocGolden), [](const auto& info) {
      return problem_name(info.param.id) +
             std::string(info.param.memory_strategy ? "_memory"
                                                    : "_workload");
    });

}  // namespace
}  // namespace memfront
