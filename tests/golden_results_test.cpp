// Golden-result pins for the engine/policy refactor.
//
// The PR-1 simulator (one monolithic class) produced these exact
// ParallelResults for every Table 1 problem under both dynamic
// strategies; the layered engine must reproduce them bit-for-bit — the
// discrete-event queue is deterministic (FIFO at equal timestamps), so
// any deviation, down to the last ulp of the makespan, means a
// scheduling decision moved. Makespans are hex floats for exactness.
#include <gtest/gtest.h>

#include <tuple>

#include "memfront/core/experiment.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

struct Golden {
  ProblemId id;
  bool memory_strategy;
  count_t max_stack_peak;
  double makespan;
  count_t messages;
  count_t comm_entries;
  index_t type2_nodes;
};

// Captured at scale 0.25, 8 processors, nested dissection, from the
// pre-refactor simulator (PR 1, commit 111257f).
constexpr Golden kGolden[] = {
    {ProblemId::kBmwCra1, false, 524, 0x1.cadbe47568958p-14, 56, 4838, 4},
    {ProblemId::kBmwCra1, true, 524, 0x1.cbeec533eb02ep-14, 52, 4813, 4},
    {ProblemId::kGupta3, false, 22366, 0x1.0ea45d97e0b1ep-8, 32, 198576, 0},
    {ProblemId::kGupta3, true, 22366, 0x1.0ea45d97e0b1ep-8, 32, 198576, 0},
    {ProblemId::kMsdoor, false, 9888, 0x1.7cc1d0221f6d5p-10, 90, 124105, 10},
    {ProblemId::kMsdoor, true, 9888, 0x1.970f3f7cdc636p-10, 117, 123190, 10},
    {ProblemId::kShip003, false, 1860, 0x1.61614c7ebc513p-12, 78, 28018, 6},
    {ProblemId::kShip003, true, 1582, 0x1.74c1b7b4a67f2p-12, 83, 27777, 6},
    {ProblemId::kPre2, false, 1713041, 0x1.0ed8394fe070ap+0, 185, 11741515,
     2},
    {ProblemId::kPre2, true, 1713041, 0x1.3b3f2749e84dep+0, 179, 11741515,
     2},
    {ProblemId::kTwotone, false, 87336, 0x1.5d187690cd649p-6, 219, 659075,
     8},
    {ProblemId::kTwotone, true, 87336, 0x1.2b439d8e9bb9ap-6, 229, 646904, 8},
    {ProblemId::kUltrasound3, false, 6068, 0x1.248592c8e75c6p-11, 65, 67400,
     4},
    {ProblemId::kUltrasound3, true, 6068, 0x1.4d56d37ef632dp-11, 60, 67458,
     4},
    {ProblemId::kXenon2, false, 6277, 0x1.4e3a0e8872c49p-11, 73, 69300, 5},
    {ProblemId::kXenon2, true, 5289, 0x1.7c77fe46f5e66p-11, 77, 70525, 5},
};

class GoldenResults : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenResults, RefactoredEngineReproducesPreRefactorRun) {
  const Golden& g = GetParam();
  const Problem p = make_problem(g.id, 0.25);
  ExperimentSetup setup;
  setup.nprocs = 8;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  if (g.memory_strategy) {
    setup.slave_strategy = SlaveStrategy::kMemoryImproved;
    setup.task_strategy = TaskStrategy::kMemoryAware;
  }
  const ExperimentOutcome o = run_experiment(p.matrix, setup);
  EXPECT_EQ(o.max_stack_peak, g.max_stack_peak);
  EXPECT_EQ(o.makespan, g.makespan);  // bit-identical, not approximately
  EXPECT_EQ(o.parallel.messages, g.messages);
  EXPECT_EQ(o.parallel.comm_entries, g.comm_entries);
  EXPECT_EQ(o.parallel.type2_nodes_run, g.type2_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblemsBothStrategies, GoldenResults, ::testing::ValuesIn(kGolden),
    [](const auto& info) {
      return problem_name(info.param.id) +
             std::string(info.param.memory_strategy ? "_memory"
                                                    : "_workload");
    });

}  // namespace
}  // namespace memfront
