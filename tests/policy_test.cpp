// The scheduling engine consults its SchedulerPolicy at every decision
// point — asserted here with counting/forcing mocks plugged straight
// into the Engine, plus equivalence and name checks for the concrete
// policies make_policy builds.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "memfront/core/engine.hpp"
#include "memfront/core/experiment.hpp"
#include "memfront/core/policy.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

struct Instance {
  PreparedExperiment prepared;
  SchedConfig config;
};

Instance make_instance(index_t nprocs, bool memory_strategy) {
  const Problem p = make_problem(ProblemId::kTwotone, 0.25);
  ExperimentSetup setup;
  setup.nprocs = nprocs;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  if (memory_strategy) {
    setup.slave_strategy = SlaveStrategy::kMemoryImproved;
    setup.task_strategy = TaskStrategy::kMemoryAware;
  }
  return {prepare_experiment(p.matrix, setup), sched_config(setup)};
}

ParallelResult run_with(const Instance& inst, SchedulerPolicy* policy) {
  Engine engine(inst.prepared.analysis->tree, inst.prepared.analysis->memory,
                inst.prepared.mapping, inst.prepared.analysis->traversal,
                inst.config, /*trace=*/nullptr, policy);
  return engine.run();
}

/// Forwards every consultation to an inner policy, counting them.
class CountingPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "counting"; }
  std::size_t select_task(const TaskQuery& query) override {
    ++select_task_calls;
    EXPECT_FALSE(query.pool.empty());
    return inner->select_task(query);
  }
  count_t slave_metric(index_t q, const SlaveQuery& query) const override {
    ++slave_metric_calls;
    return inner->slave_metric(q, query);
  }
  std::vector<SlaveShare> select_slaves(
      const SlaveQuery& query,
      std::vector<SlaveCandidate> candidates) override {
    ++select_slaves_calls;
    EXPECT_FALSE(candidates.empty());
    return inner->select_slaves(query, std::move(candidates));
  }
  double admit(index_t p, count_t incoming) override {
    ++admit_calls;
    return inner->admit(p, incoming);
  }

  std::unique_ptr<SchedulerPolicy> inner;
  int select_task_calls = 0;
  int select_slaves_calls = 0;
  mutable int slave_metric_calls = 0;
  int admit_calls = 0;
};

TEST(SchedulerPolicy, EngineConsultsAtEveryDispatchAndAdmissionPoint) {
  const index_t nprocs = 4;
  const Instance inst = make_instance(nprocs, false);
  CountingPolicy counting;
  Engine engine(inst.prepared.analysis->tree, inst.prepared.analysis->memory,
                inst.prepared.mapping, inst.prepared.analysis->traversal,
                inst.config, /*trace=*/nullptr, &counting);
  counting.inner = std::make_unique<WorkloadPolicy>(inst.config, engine);
  const ParallelResult r = engine.run();

  index_t pool_activations = 0;
  index_t urgent_tasks = 0;
  for (const ProcResult& pr : r.procs) {
    pool_activations += pr.tasks_run;
    urgent_tasks += pr.slave_tasks_run;
  }
  // One task selection per pool activation.
  EXPECT_EQ(counting.select_task_calls, pool_activations);
  // One slave selection per type-2 front, one metric per candidate.
  EXPECT_EQ(counting.select_slaves_calls, r.type2_nodes_run);
  EXPECT_EQ(counting.slave_metric_calls, r.type2_nodes_run * (nprocs - 1));
  // One admission per allocation: every pool activation (type-1 front or
  // type-2 master part) and every received block (slave or root share).
  EXPECT_EQ(counting.admit_calls, pool_activations + urgent_tasks);
}

TEST(SchedulerPolicy, CountingWrapperDoesNotPerturbTheSchedule) {
  const Instance inst = make_instance(4, false);
  const ParallelResult plain = run_with(inst, nullptr);
  CountingPolicy counting;
  Engine engine(inst.prepared.analysis->tree, inst.prepared.analysis->memory,
                inst.prepared.mapping, inst.prepared.analysis->traversal,
                inst.config, /*trace=*/nullptr, &counting);
  counting.inner = std::make_unique<WorkloadPolicy>(inst.config, engine);
  const ParallelResult wrapped = engine.run();
  EXPECT_EQ(plain.max_stack_peak, wrapped.max_stack_peak);
  EXPECT_EQ(plain.makespan, wrapped.makespan);
  EXPECT_EQ(plain.messages, wrapped.messages);
}

/// Always activates the pool bottom, indifferent slave metrics; proves a
/// foreign strategy object can drive the engine end to end without a
/// PolicyHost.
class FifoPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t select_task(const TaskQuery&) override { return 0; }
  count_t slave_metric(index_t, const SlaveQuery&) const override {
    return 0;
  }
  std::vector<SlaveShare> select_slaves(
      const SlaveQuery& query,
      std::vector<SlaveCandidate> candidates) override {
    return memory_selection(query.problem, std::move(candidates));
  }
  double admit(index_t, count_t) override { return 0.0; }
};

TEST(SchedulerPolicy, CustomPolicyRunsToCompletionAndConservesWork) {
  const Instance inst = make_instance(4, false);
  FifoPolicy fifo;
  const ParallelResult r = run_with(inst, &fifo);
  EXPECT_GT(r.makespan, 0.0);
  count_t factors = 0;
  for (const ProcResult& pr : r.procs) factors += pr.factor_entries;
  EXPECT_EQ(factors, inst.prepared.analysis->tree.total_factor_entries());
}

/// Charges a fixed stall at every admission.
class StallingPolicy : public SchedulerPolicy {
 public:
  explicit StallingPolicy(std::unique_ptr<SchedulerPolicy> inner)
      : inner_(std::move(inner)) {}
  const char* name() const override { return "stalling"; }
  std::size_t select_task(const TaskQuery& query) override {
    return inner_->select_task(query);
  }
  count_t slave_metric(index_t q, const SlaveQuery& query) const override {
    return inner_->slave_metric(q, query);
  }
  std::vector<SlaveShare> select_slaves(
      const SlaveQuery& query,
      std::vector<SlaveCandidate> candidates) override {
    return inner_->select_slaves(query, std::move(candidates));
  }
  double admit(index_t, count_t) override { return 1e-5; }

 private:
  std::unique_ptr<SchedulerPolicy> inner_;
};

TEST(SchedulerPolicy, AdmissionStallsLengthenTheMakespan) {
  // Same host-free inner policy in both runs, so the only difference is
  // the injected admission stall.
  const Instance inst = make_instance(4, false);
  FifoPolicy fifo;
  const ParallelResult plain = run_with(inst, &fifo);
  StallingPolicy stalling(std::make_unique<FifoPolicy>());
  const ParallelResult stalled = run_with(inst, &stalling);
  EXPECT_GT(stalled.makespan, plain.makespan);
}

TEST(SchedulerPolicy, MakePolicyNamesTheConfiguredStrategy) {
  const Instance workload = make_instance(2, false);
  const Instance memory = make_instance(2, true);
  Engine host(workload.prepared.analysis->tree,
              workload.prepared.analysis->memory, workload.prepared.mapping,
              workload.prepared.analysis->traversal, workload.config);
  EXPECT_STREQ(make_policy(workload.config, host, nullptr)->name(),
               "workload");
  EXPECT_STREQ(make_policy(memory.config, host, nullptr)->name(),
               "memory+static");
  SchedConfig plain_memory = memory.config;
  plain_memory.slave_strategy = SlaveStrategy::kMemory;
  EXPECT_STREQ(make_policy(plain_memory, host, nullptr)->name(), "memory");
}

}  // namespace
}  // namespace memfront
