#include <gtest/gtest.h>

#include <tuple>

#include "memfront/ordering/bisection.hpp"
#include "memfront/sparse/coo.hpp"
#include "memfront/ordering/ordering.hpp"
#include "memfront/ordering/quotient_graph.hpp"
#include "memfront/sparse/generators.hpp"
#include "memfront/sparse/permutation.hpp"
#include "memfront/symbolic/col_counts.hpp"
#include "memfront/symbolic/etree.hpp"

namespace memfront {
namespace {

Graph grid_graph(index_t nx, index_t ny, index_t nz = 1) {
  return Graph::from_matrix(grid_matrix({.nx = nx, .ny = ny, .nz = nz,
                                         .dof = 1, .wide_stencil = false,
                                         .symmetric_values = true,
                                         .seed = 42}));
}

/// Factor fill of an ordering via exact column counts.
count_t factor_nnz(const Graph& g, std::span<const index_t> perm) {
  // Permute adjacency, compute the etree and counts.
  const auto inv = invert_permutation(perm);
  const index_t n = g.num_vertices();
  std::vector<count_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> adj;
  for (index_t v = 0; v < n; ++v) {
    std::vector<index_t> nb;
    for (index_t w : g.neighbors(perm[v]))
      nb.push_back(inv[static_cast<std::size_t>(w)]);
    std::sort(nb.begin(), nb.end());
    adj.insert(adj.end(), nb.begin(), nb.end());
    ptr[v + 1] = static_cast<count_t>(adj.size());
  }
  Graph pg(n, std::move(ptr), std::move(adj));
  const auto parent = elimination_tree(pg);
  count_t total = 0;
  for (index_t c : column_counts(pg, parent)) total += c;
  return total;
}

TEST(Graph, FromMatrixSymmetrizes) {
  const Graph g = grid_graph(4, 4);
  EXPECT_EQ(g.num_vertices(), 16);
  // 4x4 5-point grid: 2*4*3 = 24 undirected edges.
  EXPECT_EQ(g.num_edges(), 24);
  for (index_t v = 0; v < g.num_vertices(); ++v)
    for (index_t w : g.neighbors(v)) EXPECT_NE(w, v);
}

TEST(Graph, InducedSubgraph) {
  const Graph g = grid_graph(3, 3);
  const std::vector<index_t> verts{0, 1, 2};  // the first grid row: a path
  const Graph sub = g.induced(verts);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_EQ(sub.degree(1), 2);
}

TEST(Graph, ComponentsCounted) {
  // Two disjoint grids glued into one pattern via block diagonal.
  CooMatrix coo(8, 8);
  for (index_t i = 0; i < 8; ++i) coo.add(i, i, 1.0);
  coo.add_symmetric(0, 1, 1.0);
  coo.add_symmetric(1, 2, 1.0);
  coo.add_symmetric(4, 5, 1.0);
  const Graph g = Graph::from_matrix(coo.to_csc());
  std::vector<index_t> comp;
  // {0,1,2} + {4,5} + singletons 3,6,7 = 5 components.
  EXPECT_EQ(g.components(comp), 5);
}

class OrderingValidity
    : public ::testing::TestWithParam<std::tuple<OrderingKind, int>> {};

TEST_P(OrderingValidity, ProducesPermutation) {
  const auto [kind, shape] = GetParam();
  Graph g = shape == 0   ? grid_graph(9, 9)
            : shape == 1 ? grid_graph(5, 5, 4)
                         : Graph::from_matrix(circuit_matrix(
                               {.base_nodes = 60, .harmonics = 3,
                                .avg_degree = 4, .nonlinear_frac = 0.1,
                                .unsym_frac = 0.3, .seed = 9}));
  const auto perm = compute_ordering(g, kind, 1);
  EXPECT_EQ(perm.size(), static_cast<std::size_t>(g.num_vertices()));
  EXPECT_TRUE(is_permutation(perm));
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllShapes, OrderingValidity,
    ::testing::Combine(::testing::Values(OrderingKind::kNatural,
                                         OrderingKind::kAmd,
                                         OrderingKind::kAmf,
                                         OrderingKind::kNestedDissection,
                                         OrderingKind::kPord,
                                         OrderingKind::kRcm),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return ordering_name(std::get<0>(info.param)) + std::string("_shape") +
             std::to_string(std::get<1>(info.param));
    });

TEST(Ordering, FillReducersBeatNaturalOn2DGrid) {
  const Graph g = grid_graph(14, 14);
  const count_t natural = factor_nnz(g, identity_permutation(196));
  for (OrderingKind kind : {OrderingKind::kAmd, OrderingKind::kAmf,
                            OrderingKind::kNestedDissection,
                            OrderingKind::kPord}) {
    const count_t fill = factor_nnz(g, compute_ordering(g, kind, 1));
    EXPECT_LT(fill, natural) << ordering_name(kind);
  }
}

TEST(Ordering, AmdCloseToNestedDissectionOnGrid) {
  // Sanity on quality: neither should be wildly worse than the other.
  const Graph g = grid_graph(16, 16);
  const count_t amd = factor_nnz(g, amd_order(g));
  const count_t nd = factor_nnz(g, nested_dissection_order(g, 1));
  EXPECT_LT(amd, 3 * nd);
  EXPECT_LT(nd, 3 * amd);
}

TEST(Ordering, AmfDiffersFromAmd) {
  const Graph g = grid_graph(12, 12);
  EXPECT_NE(amd_order(g), amf_order(g));
}

TEST(Ordering, HandlesDisconnectedGraphs) {
  CooMatrix coo(30, 30);
  for (index_t i = 0; i < 30; ++i) coo.add(i, i, 1.0);
  for (index_t i = 0; i < 13; ++i) coo.add_symmetric(i, i + 1, 1.0);
  for (index_t i = 16; i < 29; ++i) coo.add_symmetric(i, i + 1, 1.0);
  const Graph g = Graph::from_matrix(coo.to_csc());
  for (OrderingKind kind : {OrderingKind::kAmd, OrderingKind::kAmf,
                            OrderingKind::kNestedDissection,
                            OrderingKind::kPord, OrderingKind::kRcm}) {
    EXPECT_TRUE(is_permutation(compute_ordering(g, kind, 2)))
        << ordering_name(kind);
  }
}

TEST(Ordering, EmptyAndTinyGraphs) {
  const Graph empty(0, {0}, {});
  EXPECT_TRUE(compute_ordering(empty, OrderingKind::kAmd, 0).empty());
  CooMatrix coo(1, 1);
  coo.add(0, 0, 1.0);
  const Graph one = Graph::from_matrix(coo.to_csc());
  EXPECT_EQ(compute_ordering(one, OrderingKind::kNestedDissection, 0),
            (std::vector<index_t>{0}));
}

TEST(MinimumDegree, DenseRowsDeferred) {
  // A star graph: the hub is the densest row and must be ordered last.
  CooMatrix coo(200, 200);
  for (index_t i = 0; i < 200; ++i) coo.add(i, i, 1.0);
  for (index_t i = 1; i < 200; ++i) coo.add_symmetric(0, i, 1.0);
  const Graph g = Graph::from_matrix(coo.to_csc());
  const auto perm =
      minimum_degree_order(g, {.metric = MdMetric::kExternalDegree,
                               .dense_threshold = 50});
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_EQ(perm.back(), 0);  // hub last
}

TEST(MinimumDegree, PathGraphIsFillFree) {
  // On a path, minimum degree must find a perfect (zero-fill) ordering.
  CooMatrix coo(40, 40);
  for (index_t i = 0; i < 40; ++i) coo.add(i, i, 1.0);
  for (index_t i = 0; i + 1 < 40; ++i) coo.add_symmetric(i, i + 1, 1.0);
  const Graph g = Graph::from_matrix(coo.to_csc());
  const auto perm = amd_order(g);
  // nnz(L) for a zero-fill path factorization: 2n-1.
  EXPECT_EQ(factor_nnz(g, perm), 2 * 40 - 1);
}

TEST(Bisection, SeparatorSeparates) {
  const Graph g = grid_graph(12, 12);
  const Bisection cut = bisect(g);
  EXPECT_EQ(cut.part_a.size() + cut.part_b.size() + cut.separator.size(),
            144u);
  EXPECT_FALSE(cut.part_a.empty());
  EXPECT_FALSE(cut.part_b.empty());
  // No edge may connect part_a and part_b directly.
  std::vector<int> side(144, -1);
  for (index_t v : cut.part_a) side[static_cast<std::size_t>(v)] = 0;
  for (index_t v : cut.part_b) side[static_cast<std::size_t>(v)] = 1;
  for (index_t v = 0; v < 144; ++v)
    for (index_t w : g.neighbors(v))
      if (side[static_cast<std::size_t>(v)] == 0)
        EXPECT_NE(side[static_cast<std::size_t>(w)], 1);
}

TEST(Bisection, GridSeparatorIsSmall) {
  const Graph g = grid_graph(16, 16);
  const Bisection cut = bisect(g);
  // A 16x16 grid has a 16-vertex optimal separator; allow some slack.
  EXPECT_LE(cut.separator.size(), 40u);
  // Balance within the configured tolerance (plus separator slack).
  EXPECT_GT(cut.part_a.size(), 60u);
  EXPECT_GT(cut.part_b.size(), 60u);
}

TEST(Bisection, DisconnectedSplitsWithoutSeparator) {
  CooMatrix coo(20, 20);
  for (index_t i = 0; i < 20; ++i) coo.add(i, i, 1.0);
  for (index_t i = 0; i < 9; ++i) coo.add_symmetric(i, i + 1, 1.0);
  for (index_t i = 10; i < 19; ++i) coo.add_symmetric(i, i + 1, 1.0);
  const Graph g = Graph::from_matrix(coo.to_csc());
  const Bisection cut = bisect(g);
  EXPECT_TRUE(cut.separator.empty());
  EXPECT_EQ(cut.part_a.size(), 10u);
  EXPECT_EQ(cut.part_b.size(), 10u);
}

TEST(Ordering, PaperOrderingsOrder) {
  const auto kinds = paper_orderings();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(ordering_name(kinds[0]), "METIS");
  EXPECT_EQ(ordering_name(kinds[1]), "PORD");
  EXPECT_EQ(ordering_name(kinds[2]), "AMD");
  EXPECT_EQ(ordering_name(kinds[3]), "AMF");
}

}  // namespace
}  // namespace memfront
