// Real out-of-core execution under a hard memory budget: the budgeted
// drivers must produce factors and solutions bit-identical to the
// in-core ones while the charged footprint (resident CBs + live fronts
// + in-flight spill writes) never exceeds the budget — checked at
// 0.8x of the in-core arena peak on the largest Table-1 problem
// (PRE2), serially and at 2/4/8 workers, in both I/O disciplines.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "memfront/frontal/arena.hpp"
#include "memfront/obs/metrics.hpp"
#include "memfront/solver/numeric_factor.hpp"
#include "memfront/solver/parallel_numeric.hpp"
#include "memfront/solver/solve.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/status.hpp"

#if MEMFRONT_OOC_REAL

namespace memfront {
namespace {

constexpr double kScale = 0.2;

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_factors_bitwise_identical(const Factorization& run,
                                      const Factorization& base,
                                      const std::string& label) {
  // OOC runs leave the panels on disk: page them back before comparing
  // (the same call every solve entry point makes).
  ensure_factors_resident(run);
  ASSERT_EQ(run.nodes.size(), base.nodes.size()) << label;
  EXPECT_EQ(run.row_of, base.row_of) << label;
  for (std::size_t i = 0; i < run.nodes.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(run.nodes[i].panel, base.nodes[i].panel))
        << label << ": panel of node " << i;
    ASSERT_TRUE(bitwise_equal(run.nodes[i].u12, base.nodes[i].u12))
        << label << ": u12 of node " << i;
  }
}

struct Pre2Fixture {
  Problem p = make_problem(ProblemId::kPre2, kScale);
  Analysis analysis;
  std::vector<double> b;
  Factorization incore;
  std::vector<double> x_incore;
  count_t arena_peak = 0;

  Pre2Fixture() {
    AnalysisOptions opt;
    opt.ordering = OrderingKind::kNestedDissection;
    analysis = analyze(p.matrix, opt);
    b.assign(static_cast<std::size_t>(p.matrix.nrows()), 1.0);
    incore = numeric_factorize(analysis);
    x_incore = solve_factorized_multi(analysis, incore, b, 1);
    arena_peak = incore.stats.arena_peak_doubles;
  }
};

Pre2Fixture& pre2() {
  static Pre2Fixture fixture;
  return fixture;
}

OocExecConfig budgeted(count_t budget, OocIoMode mode = OocIoMode::kWriteBehind) {
  OocExecConfig cfg;
  cfg.enabled = true;
  cfg.budget_doubles = budget;
  cfg.io_mode = mode;
  return cfg;
}

TEST(OocExec, SerialPre2At08PeakIsBitIdenticalAndWithinBudget) {
  Pre2Fixture& f = pre2();
  const count_t budget = f.arena_peak * 8 / 10;
  ASSERT_GE(budget, predict_min_ooc_budget(f.analysis.tree,
                                           f.analysis.traversal))
      << "0.8x the in-core peak is below the structural floor for this "
         "tree; the test problem no longer exercises the spill path";

  obs::MetricsRegistry::global().reset();
  NumericOptions opt;
  opt.ooc = budgeted(budget);
  const Factorization fact = numeric_factorize(f.analysis, opt);

  // The factors must not depend on where the CBs lived.
  expect_factors_bitwise_identical(fact, f.incore, "serial 0.8x");

  // The budget was a *hard* bound on the charged footprint, and the run
  // really degraded (spilled) instead of quietly fitting.
  const OocExecStats& st = fact.stats.ooc;
  EXPECT_LE(st.charged_peak_doubles, budget);
  EXPECT_EQ(st.overrun_peak_doubles, 0);
  EXPECT_GT(st.spill_events, 0) << "nothing spilled: budget not binding";
  EXPECT_EQ(st.spill_doubles, st.reload_doubles)
      << "every spilled CB must be reloaded exactly once";
  EXPECT_GT(st.factor_write_doubles, 0);

  // The same bound, observable from the outside through the obs gauges
  // (the acceptance pin: arena + spill-buffer bytes <= budget bytes).
  const auto* charged = obs::MetricsRegistry::global().find_gauge(
      "solver.ooc.charged_peak_bytes");
  const auto* buffer = obs::MetricsRegistry::global().find_gauge(
      "solver.ooc.buffer_high_water_bytes");
  ASSERT_NE(charged, nullptr);
  ASSERT_NE(buffer, nullptr);
  EXPECT_LE(charged->value(),
            budget * static_cast<count_t>(sizeof(double)));
  EXPECT_LE(buffer->value(),
            budget * static_cast<count_t>(sizeof(double)));

  // Factor panels went to disk and come back transparently at solve
  // time, to the same solution bits.
  ASSERT_NE(fact.ooc_factors, nullptr);
  const std::vector<double> x = solve_factorized_multi(f.analysis, fact, f.b, 1);
  EXPECT_TRUE(bitwise_equal(x, f.x_incore));
}

class OocExecWorkers : public ::testing::TestWithParam<unsigned> {};

TEST_P(OocExecWorkers, ParallelPre2At08PeakIsBitIdentical) {
  const unsigned workers = GetParam();
  Pre2Fixture& f = pre2();
  const count_t budget = f.arena_peak * 8 / 10;

  ParallelNumericOptions opt;
  opt.nthreads = workers;
  opt.nprocs = 8;  // fixed mapping: bits must not depend on workers
  opt.ooc = budgeted(budget);
  const Factorization fact = parallel_numeric_factorize(f.analysis, opt);

  expect_factors_bitwise_identical(
      fact, f.incore, "workers " + std::to_string(workers));
  const OocExecStats& st = fact.stats.ooc;
  EXPECT_LE(st.charged_peak_doubles, budget);
  EXPECT_EQ(st.overrun_peak_doubles, 0);
  EXPECT_GT(st.spill_events, 0);

  SolveOptions sopt;
  sopt.nthreads = workers;
  sopt.nprocs = 8;
  const std::vector<double> x =
      solve_factorized_multi(f.analysis, fact, f.b, 1, sopt);
  EXPECT_TRUE(bitwise_equal(x, f.x_incore))
      << "workers " << workers << ": solution bits";
}

INSTANTIATE_TEST_SUITE_P(BudgetSweep, OocExecWorkers,
                         ::testing::Values(2u, 4u, 8u),
                         [](const auto& info) {
                           return std::string("w") +
                                  std::to_string(info.param);
                         });

TEST(OocExec, SynchronousModeMatchesWriteBehindBitForBit) {
  Pre2Fixture& f = pre2();
  const count_t budget = f.arena_peak * 8 / 10;
  NumericOptions opt;
  opt.ooc = budgeted(budget, OocIoMode::kSynchronous);
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "synchronous");
  EXPECT_LE(fact.stats.ooc.charged_peak_doubles, budget);
  // Synchronous writes never overlap compute by definition.
  EXPECT_EQ(fact.stats.ooc.overlap_seconds, 0.0);
}

TEST(OocExec, AdmissionDrainModeMatchesToo) {
  Pre2Fixture& f = pre2();
  NumericOptions opt;
  opt.ooc = budgeted(f.arena_peak * 8 / 10, OocIoMode::kAdmissionDrain);
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "admission-drain");
}

TEST(OocExec, UnlimitedBudgetStillStreamsFactors) {
  Pre2Fixture& f = pre2();
  NumericOptions opt;
  opt.ooc = budgeted(0);  // unlimited: nothing spills, factors stream
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "unlimited");
  EXPECT_EQ(fact.stats.ooc.spill_events, 0);
  EXPECT_GT(fact.stats.ooc.factor_write_doubles, 0);
  const std::vector<double> x = solve_factorized_multi(f.analysis, fact, f.b, 1);
  EXPECT_TRUE(bitwise_equal(x, f.x_incore));
}

TEST(OocExec, CbOnlyModeKeepsFactorsResident) {
  Pre2Fixture& f = pre2();
  NumericOptions opt;
  opt.ooc = budgeted(f.arena_peak * 8 / 10);
  opt.ooc.spill_factors = false;
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "cb-only");
  EXPECT_EQ(fact.ooc_factors, nullptr);
  EXPECT_EQ(fact.stats.ooc.factor_write_doubles, 0);
  EXPECT_GT(fact.stats.ooc.spill_events, 0);
}

TEST(OocExec, InfeasibleBudgetIsAStructuredResourceError) {
  Pre2Fixture& f = pre2();
  const count_t floor =
      predict_min_ooc_budget(f.analysis.tree, f.analysis.traversal);
  NumericOptions opt;
  opt.ooc = budgeted(floor / 2);  // below the single-node working set
  try {
    numeric_factorize(f.analysis, opt);
    FAIL() << "infeasible budget did not throw";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_NE(e.context().detail.find("budget="), std::string::npos)
        << "the error does not carry the budget arithmetic: "
        << e.context().detail;
  }
}

TEST(OocExec, AllowOverrunRecordsInsteadOfFailing) {
  Pre2Fixture& f = pre2();
  const count_t floor =
      predict_min_ooc_budget(f.analysis.tree, f.analysis.traversal);
  NumericOptions opt;
  opt.ooc = budgeted(floor / 2);
  opt.ooc.allow_overrun = true;
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "overrun");
  EXPECT_GT(fact.stats.ooc.overrun_peak_doubles, 0);
  EXPECT_GT(fact.stats.ooc.charged_peak_doubles, floor / 2);
}

TEST(OocExec, MinBudgetPredictorIsAFeasibilityBoundary) {
  Pre2Fixture& f = pre2();
  const count_t floor =
      predict_min_ooc_budget(f.analysis.tree, f.analysis.traversal);
  ASSERT_GT(floor, 0);
  ASSERT_LE(floor, f.arena_peak);
  // Exactly at the floor the serial traversal must still complete: the
  // coordinator can spill everything outside one node's family.
  NumericOptions opt;
  opt.ooc = budgeted(floor);
  const Factorization fact = numeric_factorize(f.analysis, opt);
  expect_factors_bitwise_identical(fact, f.incore, "at the floor");
  EXPECT_LE(fact.stats.ooc.charged_peak_doubles, floor);
}

TEST(OocExec, RepeatedSolvesAfterReloadStayIdentical) {
  Pre2Fixture& f = pre2();
  NumericOptions opt;
  opt.ooc = budgeted(f.arena_peak * 8 / 10);
  const Factorization fact = numeric_factorize(f.analysis, opt);
  const std::vector<double> x1 = solve_factorized_multi(f.analysis, fact, f.b, 1);
  const std::vector<double> x2 = solve_factorized_multi(f.analysis, fact, f.b, 1);
  EXPECT_TRUE(bitwise_equal(x1, f.x_incore));
  EXPECT_TRUE(bitwise_equal(x2, x1)) << "second solve (panels resident)";
}

}  // namespace
}  // namespace memfront

#endif  // MEMFRONT_OOC_REAL
