#include <gtest/gtest.h>

#include <cmath>

#include "memfront/sparse/generators.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

/// Every generated matrix must be usable unpivoted: strict (or equal)
/// row-diagonal dominance.
void expect_diagonally_dominant(const CscMatrix& m) {
  std::vector<double> offdiag(static_cast<std::size_t>(m.nrows()), 0.0);
  std::vector<double> diag(static_cast<std::size_t>(m.nrows()), 0.0);
  for (index_t j = 0; j < m.ncols(); ++j) {
    auto rows = m.column(j);
    auto vals = m.column_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] == j)
        diag[rows[k]] = std::abs(vals[k]);
      else
        offdiag[rows[k]] += std::abs(vals[k]);
    }
  }
  for (index_t i = 0; i < m.nrows(); ++i)
    EXPECT_GT(diag[static_cast<std::size_t>(i)],
              offdiag[static_cast<std::size_t>(i)] - 1e-12)
        << "row " << i;
}

TEST(GridMatrix, SizesAndStencil2D) {
  const CscMatrix m = grid_matrix({.nx = 5, .ny = 4, .nz = 1, .dof = 1,
                                   .wide_stencil = false,
                                   .symmetric_values = true, .seed = 1});
  EXPECT_EQ(m.nrows(), 20);
  // 5-point stencil: interior points have 4 neighbours + diagonal.
  count_t max_col = 0;
  for (index_t j = 0; j < m.ncols(); ++j)
    max_col = std::max<count_t>(max_col,
                                static_cast<count_t>(m.column(j).size()));
  EXPECT_EQ(max_col, 5);
  EXPECT_TRUE(m.pattern_symmetric());
}

TEST(GridMatrix, WideStencil3D) {
  const CscMatrix m = grid_matrix({.nx = 4, .ny = 4, .nz = 4, .dof = 1,
                                   .wide_stencil = true,
                                   .symmetric_values = true, .seed = 2});
  EXPECT_EQ(m.nrows(), 64);
  // 27-point stencil: interior points connect to all 26 neighbours.
  count_t max_col = 0;
  for (index_t j = 0; j < m.ncols(); ++j)
    max_col = std::max<count_t>(max_col,
                                static_cast<count_t>(m.column(j).size()));
  EXPECT_EQ(max_col, 27);
}

TEST(GridMatrix, DofBlocksExpandPattern) {
  const CscMatrix m = grid_matrix({.nx = 3, .ny = 3, .nz = 1, .dof = 3,
                                   .wide_stencil = true,
                                   .symmetric_values = true, .seed = 3});
  EXPECT_EQ(m.nrows(), 27);
  // Interior point: 9 stencil points x 3 dof = 27 entries per column.
  count_t max_col = 0;
  for (index_t j = 0; j < m.ncols(); ++j)
    max_col = std::max<count_t>(max_col,
                                static_cast<count_t>(m.column(j).size()));
  EXPECT_EQ(max_col, 27);
}

TEST(GridMatrix, UnsymmetricValuesSymmetricPattern) {
  const CscMatrix m = grid_matrix({.nx = 6, .ny = 6, .nz = 2, .dof = 1,
                                   .wide_stencil = true,
                                   .symmetric_values = false, .seed = 4});
  EXPECT_TRUE(m.pattern_symmetric());
  expect_diagonally_dominant(m);
}

TEST(GridMatrix, DiagonalDominance) {
  expect_diagonally_dominant(grid_matrix({.nx = 5, .ny = 5, .nz = 3,
                                          .dof = 2, .wide_stencil = true,
                                          .symmetric_values = true,
                                          .seed = 5}));
}

TEST(LpNormalEquations, DenseRowsAppear) {
  const CscMatrix m = lp_normal_equations({.nrows = 300, .ncols = 900,
                                           .col_degree = 3, .heavy_cols = 4,
                                           .heavy_degree = 60, .seed = 6});
  EXPECT_EQ(m.nrows(), 300);
  EXPECT_TRUE(m.pattern_symmetric());
  count_t max_col = 0;
  for (index_t j = 0; j < m.ncols(); ++j)
    max_col = std::max<count_t>(max_col,
                                static_cast<count_t>(m.column(j).size()));
  // Heavy columns of A produce near-dense rows in A·Aᵀ.
  EXPECT_GT(max_col, 40);
  expect_diagonally_dominant(m);
}

TEST(CircuitMatrix, HarmonicStructure) {
  const CscMatrix m = circuit_matrix({.base_nodes = 200, .harmonics = 4,
                                      .avg_degree = 4, .nonlinear_frac = 0.1,
                                      .unsym_frac = 0.3, .seed = 7});
  EXPECT_EQ(m.nrows(), 800);
  expect_diagonally_dominant(m);
  // Unsymmetric by construction.
  EXPECT_FALSE(m.pattern_symmetric());
  // Harmonic coupling: some entry far off the block diagonal.
  bool far = false;
  for (index_t j = 0; j < m.ncols() && !far; ++j)
    for (index_t r : m.column(j))
      if (std::abs(r - j) >= 200) {
        far = true;
        break;
      }
  EXPECT_TRUE(far);
}

TEST(Figure1Matrix, MatchesPaperStructure) {
  const CscMatrix m = figure1_matrix();
  EXPECT_EQ(m.nrows(), 6);
  EXPECT_TRUE(m.pattern_symmetric());
  // Variables (1,2) couple to 5; (3,4) couple to 6; (5,6) couple.
  auto has = [&](index_t r, index_t c) {
    auto col = m.column(c);
    return std::find(col.begin(), col.end(), r) != col.end();
  };
  EXPECT_TRUE(has(0, 1));
  EXPECT_TRUE(has(0, 4));
  EXPECT_TRUE(has(2, 5));
  EXPECT_TRUE(has(4, 5));
  EXPECT_FALSE(has(0, 2));  // the two branches are independent
  EXPECT_FALSE(has(1, 3));
}

class ProblemsTest : public ::testing::TestWithParam<ProblemId> {};

TEST_P(ProblemsTest, BuildsConsistently) {
  const Problem p = make_problem(GetParam(), 0.5);
  EXPECT_FALSE(p.name.empty());
  EXPECT_FALSE(p.description.empty());
  EXPECT_GT(p.matrix.nrows(), 10);
  EXPECT_EQ(p.matrix.nrows(), p.matrix.ncols());
  EXPECT_GT(p.matrix.nnz(), p.matrix.nrows());  // more than the diagonal
  expect_diagonally_dominant(p.matrix);
  if (p.symmetric) {
    EXPECT_TRUE(p.matrix.pattern_symmetric());
  }
}

TEST_P(ProblemsTest, ScaleGrowsProblem) {
  const Problem small = make_problem(GetParam(), 0.4);
  const Problem large = make_problem(GetParam(), 0.7);
  EXPECT_LT(small.matrix.nrows(), large.matrix.nrows());
}

INSTANTIATE_TEST_SUITE_P(AllProblems, ProblemsTest,
                         ::testing::ValuesIn(all_problem_ids()),
                         [](const auto& info) {
                           return problem_name(info.param);
                         });

TEST(Problems, TypeColumnMatchesTable1) {
  // Table 1: BMWCRA_1, GUPTA3, MSDOOR, SHIP_003 are SYM; the rest UNS.
  EXPECT_TRUE(make_problem(ProblemId::kBmwCra1, 0.3).symmetric);
  EXPECT_TRUE(make_problem(ProblemId::kGupta3, 0.3).symmetric);
  EXPECT_TRUE(make_problem(ProblemId::kMsdoor, 0.3).symmetric);
  EXPECT_TRUE(make_problem(ProblemId::kShip003, 0.3).symmetric);
  EXPECT_FALSE(make_problem(ProblemId::kPre2, 0.3).symmetric);
  EXPECT_FALSE(make_problem(ProblemId::kTwotone, 0.3).symmetric);
  EXPECT_FALSE(make_problem(ProblemId::kUltrasound3, 0.3).symmetric);
  EXPECT_FALSE(make_problem(ProblemId::kXenon2, 0.3).symmetric);
}

TEST(Problems, UnsymmetricListMatchesTables3And5) {
  const auto ids = unsymmetric_problem_ids();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(problem_name(ids[0]), "PRE2");
  EXPECT_EQ(problem_name(ids[1]), "TWOTONE");
  EXPECT_EQ(problem_name(ids[2]), "ULTRASOUND3");
  EXPECT_EQ(problem_name(ids[3]), "XENON2");
}

}  // namespace
}  // namespace memfront
