#include <gtest/gtest.h>

#include <sstream>

#include "memfront/sparse/coo.hpp"
#include "memfront/sparse/csc.hpp"
#include "memfront/sparse/matrix_market.hpp"
#include "memfront/sparse/permutation.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

CscMatrix random_square(index_t n, count_t nnz_target, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0 + rng.real());
  for (count_t k = 0; k < nnz_target; ++k)
    coo.add(static_cast<index_t>(rng.below(n)),
            static_cast<index_t>(rng.below(n)), rng.real(-1, 1));
  return coo.to_csc();
}

TEST(Coo, DuplicatesAreSummed) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(2, 1, 1.0);
  const CscMatrix m = coo.to_csc();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.column_values(0)[0], 3.5);
  EXPECT_EQ(m.column(1)[0], 2);
}

TEST(Coo, AddSymmetricMirrors) {
  CooMatrix coo(3, 3);
  coo.add_symmetric(0, 2, 4.0);
  coo.add_symmetric(1, 1, 7.0);  // diagonal not duplicated
  const CscMatrix m = coo.to_csc();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_TRUE(m.pattern_symmetric());
}

TEST(Coo, OutOfRangeRejected) {
  CooMatrix coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(coo.add(0, -1, 1.0), std::invalid_argument);
}

TEST(Csc, InvariantsValidated) {
  // Non-monotone colptr.
  EXPECT_THROW(CscMatrix(2, 2, {0, 2, 1}, {0, 1}, {}), std::logic_error);
  // Unsorted rows within a column.
  EXPECT_THROW(CscMatrix(2, 1, {0, 2}, {1, 0}, {}), std::logic_error);
  // Row out of range.
  EXPECT_THROW(CscMatrix(2, 1, {0, 1}, {5}, {}), std::logic_error);
}

TEST(Csc, TransposeRoundTrip) {
  const CscMatrix m = random_square(40, 200, 1);
  const CscMatrix mtt = m.transpose().transpose();
  EXPECT_EQ(std::vector<count_t>(m.colptr().begin(), m.colptr().end()),
            std::vector<count_t>(mtt.colptr().begin(), mtt.colptr().end()));
  EXPECT_EQ(std::vector<index_t>(m.rowind().begin(), m.rowind().end()),
            std::vector<index_t>(mtt.rowind().begin(), mtt.rowind().end()));
  EXPECT_EQ(std::vector<double>(m.values().begin(), m.values().end()),
            std::vector<double>(mtt.values().begin(), mtt.values().end()));
}

TEST(Csc, TransposeMovesEntry) {
  CooMatrix coo(3, 2);
  coo.add(2, 0, 5.0);
  const CscMatrix t = coo.to_csc().transpose();
  EXPECT_EQ(t.nrows(), 2);
  EXPECT_EQ(t.ncols(), 3);
  EXPECT_EQ(t.column(2)[0], 0);
  EXPECT_DOUBLE_EQ(t.column_values(2)[0], 5.0);
}

TEST(Csc, SymmetrizedPatternIsSymmetricNoDiagonal) {
  const CscMatrix m = random_square(50, 300, 2);
  const CscMatrix s = m.symmetrized_pattern();
  EXPECT_TRUE(s.pattern_symmetric());
  for (index_t j = 0; j < s.ncols(); ++j)
    for (index_t r : s.column(j)) EXPECT_NE(r, j);
}

TEST(Csc, SymmetrizedPatternCoversBothDirections) {
  CooMatrix coo(4, 4);
  coo.add(1, 0, 1.0);  // only lower entry
  coo.add(2, 3, 1.0);  // only upper entry (2 < 3 rowwise)
  const CscMatrix s = coo.to_csc().symmetrized_pattern();
  EXPECT_EQ(s.nnz(), 4);  // both edges, both directions
}

TEST(Csc, AatPatternMatchesBruteForce) {
  Rng rng(3);
  CooMatrix coo(15, 25);
  for (int k = 0; k < 120; ++k)
    coo.add(static_cast<index_t>(rng.below(15)),
            static_cast<index_t>(rng.below(25)), 1.0);
  const CscMatrix a = coo.to_csc();
  const CscMatrix p = a.aat_pattern();
  // Brute force: B(i,j) nonzero iff rows i and j share a column of A.
  const CscMatrix at = a.transpose();
  for (index_t i = 0; i < 15; ++i)
    for (index_t j = 0; j < 15; ++j) {
      if (i == j) continue;
      bool share = false;
      for (index_t ki : at.column(i))
        for (index_t kj : at.column(j))
          if (ki == kj) share = true;
      auto col = p.column(j);
      const bool present =
          std::find(col.begin(), col.end(), i) != col.end();
      EXPECT_EQ(present, share) << "entry (" << i << "," << j << ")";
    }
}

TEST(Csc, PermutedMatchesDefinition) {
  const CscMatrix m = random_square(20, 80, 4);
  Rng rng(5);
  std::vector<index_t> perm = identity_permutation(20);
  for (index_t i = 19; i > 0; --i)
    std::swap(perm[i], perm[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  const CscMatrix b = m.permuted(perm);
  // b(i,j) == m(perm[i], perm[j]) — check via dense reconstruction.
  std::vector<std::vector<double>> dm(20, std::vector<double>(20, 0.0));
  for (index_t j = 0; j < 20; ++j) {
    auto rows = m.column(j);
    auto vals = m.column_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) dm[rows[k]][j] = vals[k];
  }
  for (index_t j = 0; j < 20; ++j) {
    auto rows = b.column(j);
    auto vals = b.column_values(j);
    std::vector<double> dense(20, 0.0);
    for (std::size_t k = 0; k < rows.size(); ++k) dense[rows[k]] = vals[k];
    for (index_t i = 0; i < 20; ++i)
      EXPECT_DOUBLE_EQ(dense[i], dm[perm[i]][perm[j]]);
  }
}

TEST(Csc, MultiplyAndResidual) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 3.0);
  coo.add(1, 0, 1.0);
  const CscMatrix m = coo.to_csc();
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(m.residual_inf(x, y), 0.0);
}

TEST(Permutation, InvertAndCompose) {
  const std::vector<index_t> p{2, 0, 1};
  EXPECT_TRUE(is_permutation(p));
  const auto inv = invert_permutation(p);
  EXPECT_EQ(inv, (std::vector<index_t>{1, 2, 0}));
  const auto id = compose(p, inv);
  EXPECT_EQ(id, identity_permutation(3));
}

TEST(Permutation, RejectsNonPermutation) {
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 3, 1}));
  EXPECT_THROW(invert_permutation(std::vector<index_t>{0, 0}),
               std::logic_error);
}

TEST(MatrixMarket, RoundTripGeneral) {
  const CscMatrix m = random_square(12, 40, 6);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const MatrixMarketData back = read_matrix_market(ss);
  EXPECT_FALSE(back.declared_symmetric);
  EXPECT_EQ(back.matrix.nnz(), m.nnz());
  EXPECT_EQ(std::vector<index_t>(m.rowind().begin(), m.rowind().end()),
            std::vector<index_t>(back.matrix.rowind().begin(),
                                 back.matrix.rowind().end()));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "3 1 -1.0\n"
     << "3 3 2.0\n";
  const MatrixMarketData data = read_matrix_market(ss);
  EXPECT_TRUE(data.declared_symmetric);
  EXPECT_EQ(data.matrix.nnz(), 4);  // off-diagonal mirrored
  EXPECT_TRUE(data.matrix.pattern_symmetric());
}

TEST(MatrixMarket, PatternField) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 1\n"
     << "2 1\n";
  const MatrixMarketData data = read_matrix_market(ss);
  EXPECT_EQ(data.matrix.nnz(), 2);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss("not a matrix market file\n");
  EXPECT_THROW(read_matrix_market(ss), std::invalid_argument);
}

}  // namespace
}  // namespace memfront
