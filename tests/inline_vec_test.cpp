// InlineVec: the small-buffer container under the engine's hot per-node
// bookkeeping. Raw-memory management is hand-rolled, so every state
// transition (inline <-> heap, copy/move in both states, aliasing
// push_back) gets pinned here directly.
#include <gtest/gtest.h>

#include <utility>

#include "memfront/support/inline_vec.hpp"

namespace memfront {
namespace {

struct Piece {
  int id = 0;
  long value = 0;
};

using Small = InlineVec<Piece, 2>;

Small filled(int n) {
  Small v;
  for (int i = 0; i < n; ++i) v.push_back({i, i * 10L});
  return v;
}

void expect_is(const Small& v, int n) {
  ASSERT_EQ(v.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)].id, i);
    EXPECT_EQ(v[static_cast<std::size_t>(i)].value, i * 10L);
  }
}

TEST(InlineVec, StartsEmptyWithInlineCapacity) {
  Small v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 2u);
}

TEST(InlineVec, PushBackWithinInlineStorage) {
  const Small v = filled(2);
  expect_is(v, 2);
  EXPECT_EQ(v.capacity(), 2u);  // no heap promotion yet
  EXPECT_EQ(v.front().id, 0);
  EXPECT_EQ(v.back().id, 1);
}

TEST(InlineVec, PromotesToHeapAndKeepsElements) {
  const Small v = filled(50);
  expect_is(v, 50);
  EXPECT_GE(v.capacity(), 50u);
}

TEST(InlineVec, PushBackOfOwnElementSurvivesGrowth) {
  // v.push_back(v.front()) at size == capacity: the copy must be taken
  // before the old buffer is freed (std::vector semantics).
  Small v = filled(2);
  v.push_back(v.front());  // grows 2 -> 4 while referencing element 0
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back().id, 0);
  EXPECT_EQ(v.back().value, 0L);
  // And again at the next heap-to-heap growth boundary.
  v.push_back({3, 30});
  v.push_back(v[1]);  // grows 4 -> 8
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.back().id, 1);
  EXPECT_EQ(v.back().value, 10L);
}

TEST(InlineVec, EraseShiftsTailAndKeepsCapacity) {
  Small v = filled(5);
  const std::size_t cap = v.capacity();
  v.erase(v.begin() + 1);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].id, 0);
  EXPECT_EQ(v[1].id, 2);
  EXPECT_EQ(v[2].id, 3);
  EXPECT_EQ(v[3].id, 4);
  v.erase(v.begin() + 3);  // erase the (new) last element
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back().id, 3);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(InlineVec, ClearKeepsCapacityAndAllowsReuse) {
  Small v = filled(10);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back({7, 70});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.front().id, 7);
}

TEST(InlineVec, CopyConstructInlineAndHeap) {
  const Small inline_v = filled(2);
  const Small heap_v = filled(20);
  const Small c1 = inline_v;
  const Small c2 = heap_v;
  expect_is(c1, 2);
  expect_is(c2, 20);
  expect_is(inline_v, 2);  // sources untouched
  expect_is(heap_v, 20);
}

TEST(InlineVec, CopyAssignOverBothStates) {
  Small target = filled(2);   // inline target
  target = filled(20);        // heap source
  expect_is(target, 20);
  Small target2 = filled(30);  // heap target
  target2 = filled(1);         // inline source
  expect_is(target2, 1);
  Small& self = target2;  // via a reference: dodges -Wself-assign
  target2 = self;         // self-assignment is a no-op
  expect_is(target2, 1);
}

TEST(InlineVec, MoveStealsHeapBufferAndCopiesInline) {
  Small heap_v = filled(20);
  const Piece* data = heap_v.begin();
  Small stolen = std::move(heap_v);
  expect_is(stolen, 20);
  EXPECT_EQ(stolen.begin(), data);  // heap buffer stolen, not copied
  EXPECT_TRUE(heap_v.empty());      // NOLINT: moved-from is empty by contract

  Small inline_v = filled(2);
  Small moved = std::move(inline_v);
  expect_is(moved, 2);
  EXPECT_TRUE(inline_v.empty());
}

TEST(InlineVec, MoveAssignReleasesTargetHeap) {
  Small target = filled(25);  // heap target whose buffer must be freed
  target = filled(20);        // (ASan would flag a leak/double free)
  expect_is(target, 20);
  Small inline_target = filled(1);
  inline_target = filled(40);
  expect_is(inline_target, 40);
}

TEST(InlineVec, RangeForAndEmplaceBack) {
  Small v;
  v.emplace_back(0, 0L);
  v.emplace_back(1, 10L);
  v.emplace_back(2, 20L);
  int expect = 0;
  for (const Piece& piece : v) EXPECT_EQ(piece.id, expect++);
  EXPECT_EQ(expect, 3);
}

}  // namespace
}  // namespace memfront
