#include <gtest/gtest.h>

#include "memfront/ordering/ordering.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/symbolic/splitting.hpp"
#include "memfront/symbolic/tree_memory.hpp"

namespace memfront {
namespace {

AssemblyTree one_big_node() {
  // child -> BIG (the split candidate) -> small root.
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = 1, .npiv = 20, .nfront = 120, .first_col = 0},
      {.parent = 2, .npiv = 300, .nfront = 320, .first_col = 20},
      {.parent = kNone, .npiv = 20, .nfront = 20, .first_col = 320},
  };
  return AssemblyTree(std::move(nodes), false, 340);
}

TEST(Splitting, NoOpBelowThreshold) {
  const AssemblyTree tree = one_big_node();
  const SplitResult r = split_large_masters(tree, {.master_threshold =
                                                       10'000'000});
  EXPECT_EQ(r.num_split_nodes, 0);
  EXPECT_EQ(r.tree.num_nodes(), 3);
  EXPECT_EQ(r.node_map, (std::vector<index_t>{0, 1, 2}));
}

TEST(Splitting, ChainStructureAndThreshold) {
  const AssemblyTree tree = one_big_node();
  // Big node's master part = 300*320 = 96000 entries; force a chain
  // (max_pieces large enough that the threshold binds).
  const count_t threshold = 20'000;
  const SplitResult r =
      split_large_masters(tree, {.master_threshold = threshold,
                                 .max_pieces = 16, .min_npiv = 16});
  EXPECT_EQ(r.num_split_nodes, 1);
  EXPECT_GT(r.tree.num_nodes(), 3);
  EXPECT_TRUE(r.tree.is_postordered());

  // Pivots preserved; chain pieces respect the threshold except possibly
  // the last (top) one bounded by 2*min_npiv pivots.
  count_t pivots = 0;
  for (index_t i = 0; i < r.tree.num_nodes(); ++i) {
    pivots += r.tree.npiv(i);
    const count_t master = r.tree.master_entries(i);
    if (r.tree.npiv(i) > 2 * 16 && r.tree.parent(i) != kNone)
      EXPECT_LE(master, threshold) << "node " << i;
  }
  EXPECT_EQ(pivots, 340);

  // The chain is connected and marked: bottom piece -> ... -> top piece.
  const index_t bottom = r.node_map[1];
  const index_t top = r.node_map[2] - 1;  // last piece of the big node
  for (index_t cur = bottom; cur < top; cur = r.tree.parent(cur)) {
    EXPECT_EQ(r.tree.parent(cur), cur + 1);
    EXPECT_TRUE(r.tree.is_chain_link(cur));
  }
  EXPECT_FALSE(r.tree.is_chain_link(top));
}

TEST(Splitting, RootsAreNeverSplit) {
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = kNone, .npiv = 400, .nfront = 400, .first_col = 0}};
  const AssemblyTree tree(std::move(nodes), false, 400);
  const SplitResult r =
      split_large_masters(tree, {.master_threshold = 1'000});
  EXPECT_EQ(r.num_split_nodes, 0);
  EXPECT_EQ(r.tree.num_nodes(), 1);
}

TEST(Splitting, RelativeThresholdLimitsPieces) {
  const AssemblyTree tree = one_big_node();
  const SplitResult r = split_large_masters(
      tree, {.master_threshold = 1'000, .relative_to_max_master = 0.5,
             .min_npiv = 16});
  // Effective threshold = 0.5 * 96000: the big node splits in ~2 pieces.
  EXPECT_EQ(r.num_split_nodes, 1);
  EXPECT_LE(r.tree.num_nodes(), 3 + 2);
}

TEST(Splitting, ChildrenAttachToBottomPiece) {
  const AssemblyTree tree = one_big_node();
  const SplitResult r =
      split_large_masters(tree, {.master_threshold = 20'000, .min_npiv = 16});
  // The original child (node 0) must now feed the bottom chain piece.
  const index_t bottom = r.node_map[1];
  EXPECT_EQ(r.tree.parent(r.node_map[0]), bottom);
  ASSERT_FALSE(r.tree.children(bottom).empty());
  EXPECT_EQ(r.tree.children(bottom)[0], r.node_map[0]);
}

TEST(Splitting, FrontSizesFormAChain) {
  const AssemblyTree tree = one_big_node();
  const SplitResult r =
      split_large_masters(tree, {.master_threshold = 20'000, .min_npiv = 16});
  // Each piece's front is the previous front minus its pivots; the CB of
  // piece k equals the front of piece k+1.
  for (index_t i = r.node_map[1]; i + 1 < r.node_map[2]; ++i) {
    EXPECT_EQ(r.tree.nfront(i + 1), r.tree.nfront(i) - r.tree.npiv(i));
    EXPECT_EQ(r.tree.ncb(i), r.tree.nfront(i + 1));
  }
}

TEST(Splitting, SymmetricThresholdUsesTriangle) {
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = 1, .npiv = 200, .nfront = 210, .first_col = 0},
      {.parent = kNone, .npiv = 10, .nfront = 10, .first_col = 200}};
  const AssemblyTree tree(std::move(nodes), true, 210);
  // Symmetric master part = tri(200) = 20100.
  const SplitResult keep =
      split_large_masters(tree, {.master_threshold = 20'100});
  EXPECT_EQ(keep.num_split_nodes, 0);
  const SplitResult cut =
      split_large_masters(tree, {.master_threshold = 20'099});
  EXPECT_EQ(cut.num_split_nodes, 1);
}

TEST(Splitting, PreservesTotalFactorEntriesUnsym) {
  // Splitting a node into a chain re-covers the same factor area:
  // Σ factor_entries(pieces) == factor_entries(original).
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = 1, .npiv = 128, .nfront = 150, .first_col = 0},
      {.parent = kNone, .npiv = 22, .nfront = 22, .first_col = 128}};
  const AssemblyTree tree(std::move(nodes), false, 150);
  const SplitResult r =
      split_large_masters(tree, {.master_threshold = 4'000, .min_npiv = 16});
  ASSERT_GT(r.tree.num_nodes(), 2);
  count_t chain_total = 0;
  for (index_t i = r.node_map[0]; i < r.node_map[1]; ++i)
    chain_total += r.tree.factor_entries(i);
  EXPECT_EQ(chain_total, tree.factor_entries(0));
}

TEST(Splitting, OnRealProblemKeepsAnalysisConsistent) {
  const Problem p = make_problem(ProblemId::kPre2, 0.3);
  const Graph g = Graph::from_matrix(p.matrix);
  SymbolicOptions opt;
  const SymbolicResult base = build_assembly_tree(g, amf_order(g), opt);
  count_t biggest_master = 0;  // over splittable (non-root) nodes
  for (index_t i = 0; i < base.tree.num_nodes(); ++i)
    if (base.tree.parent(i) != kNone)
      biggest_master = std::max(biggest_master, base.tree.master_entries(i));
  ASSERT_GT(biggest_master, 1000);
  const count_t threshold = biggest_master / 4;
  const SplitResult r =
      split_large_masters(base.tree, {.master_threshold = threshold});
  EXPECT_GT(r.num_split_nodes, 0);
  // Memory analysis still runs and the sequential peak stays within a
  // reasonable factor (chains add CB traffic but no front growth).
  const TreeMemory before = analyze_tree_memory(base.tree);
  const TreeMemory after = analyze_tree_memory(r.tree);
  EXPECT_GT(after.peak, 0);
  EXPECT_LT(static_cast<double>(after.peak),
            2.5 * static_cast<double>(before.peak));
}

}  // namespace
}  // namespace memfront
