#include <gtest/gtest.h>

#include <numeric>

#include "memfront/core/slave_selection.hpp"
#include "memfront/support/rng.hpp"
#include "memfront/symbolic/assembly_tree.hpp"

namespace memfront {
namespace {

index_t total_rows(const std::vector<SlaveShare>& shares) {
  index_t r = 0;
  for (const auto& s : shares) r += s.rows;
  return r;
}

void expect_valid_shares(const SelectionProblem& p,
                         const std::vector<SlaveShare>& shares) {
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(total_rows(shares), p.nfront - p.npiv);
  index_t expect_start = 0;
  count_t entries = 0;
  for (const auto& s : shares) {
    EXPECT_GT(s.rows, 0);
    EXPECT_EQ(s.row_start, expect_start);
    expect_start += s.rows;
    EXPECT_EQ(s.entries, slave_block_entries(p.nfront, p.npiv, s.row_start,
                                             s.rows, p.symmetric));
    entries += s.entries;
  }
  // Shares tile the non-master surface exactly.
  EXPECT_EQ(entries, front_entries(p.nfront, p.symmetric) -
                         master_entries(p.nfront, p.npiv, p.symmetric));
}

TEST(MemorySelection, BalancedCandidatesShareEqually) {
  SelectionProblem p{.nfront = 100, .npiv = 20, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands;
  for (index_t q = 0; q < 8; ++q) cands.push_back({q, 1000});
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  EXPECT_EQ(shares.size(), 8u);
  for (const auto& s : shares) EXPECT_EQ(s.rows, 10);
}

TEST(MemorySelection, WaterFillsTowardLeastLoaded) {
  // One nearly-empty processor, others heavily loaded: Algorithm 1 must
  // choose a small set and give most rows to the empty one.
  SelectionProblem p{.nfront = 100, .npiv = 50, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 0}, {1, 1'000'000}, {2, 1'000'000},
                                    {3, 1'000'000}};
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  EXPECT_EQ(shares.size(), 1u);  // surface too small to level the others
  EXPECT_EQ(shares[0].proc, 0);
  EXPECT_EQ(shares[0].rows, 50);
}

TEST(MemorySelection, PreservesCurrentPeakWhenPossible) {
  // Candidates at 100, 200, 1000 entries; front surface 50*100=5000.
  // Leveling {100,200} to 200 costs 100 <= 5000, leveling all three to
  // 1000 costs 1700 <= 5000 -> all three chosen; nobody exceeds the
  // previous maximum (1000) by more than the equal remainder share.
  SelectionProblem p{.nfront = 100, .npiv = 50, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 100}, {1, 200}, {2, 1000}};
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  EXPECT_EQ(shares.size(), 3u);
  // After the water-fill every selected proc ends near the same level:
  // metric + assigned entries must be within one row of each other plus
  // the equal remainder.
  std::vector<count_t> level;
  for (const auto& s : shares) {
    count_t metric = 0;
    for (const auto& c : cands)
      if (c.proc == s.proc) metric = c.metric;
    level.push_back(metric + s.entries);
  }
  const count_t lo = *std::min_element(level.begin(), level.end());
  const count_t hi = *std::max_element(level.begin(), level.end());
  EXPECT_LE(hi - lo, 2 * 100 + 100);  // within ~2 rows of each other
}

TEST(MemorySelection, RespectsMaxSlaves) {
  SelectionProblem p{.nfront = 200, .npiv = 100, .symmetric = false,
                     .max_slaves = 3, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands;
  for (index_t q = 0; q < 10; ++q) cands.push_back({q, 10});
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  EXPECT_LE(shares.size(), 3u);
}

TEST(MemorySelection, GranularityLimitsSlaveCount) {
  SelectionProblem p{.nfront = 108, .npiv = 100, .symmetric = false,
                     .max_slaves = 16, .min_rows_per_slave = 4};
  std::vector<SlaveCandidate> cands;
  for (index_t q = 0; q < 16; ++q) cands.push_back({q, 0});
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  EXPECT_LE(shares.size(), 2u);  // 8 rows / 4 rows-per-slave
}

TEST(MemorySelection, SymmetricTrapezoidEntries) {
  SelectionProblem p{.nfront = 60, .npiv = 20, .symmetric = true,
                     .max_slaves = 4, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const auto shares = memory_selection(p, cands);
  expect_valid_shares(p, shares);
  // Equal rows but trapezoidal storage: later blocks hold more entries.
  for (std::size_t k = 1; k < shares.size(); ++k)
    if (shares[k].rows == shares[k - 1].rows)
      EXPECT_GT(shares[k].entries, shares[k - 1].entries);
}

class MemorySelectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(MemorySelectionProperty, RandomSnapshotsAlwaysValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t nfront = 20 + static_cast<index_t>(rng.below(300));
    const index_t npiv =
        1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(
                std::max<index_t>(1, nfront - 2))));
    const bool sym = rng.below(2) == 0;
    SelectionProblem p{.nfront = nfront, .npiv = npiv, .symmetric = sym,
                       .max_slaves = 1 + static_cast<index_t>(rng.below(12)),
                       .min_rows_per_slave =
                           1 + static_cast<index_t>(rng.below(4))};
    std::vector<SlaveCandidate> cands;
    const index_t ncand = 1 + static_cast<index_t>(rng.below(12));
    for (index_t q = 0; q < ncand; ++q)
      cands.push_back({q, static_cast<count_t>(rng.below(1'000'000))});
    const auto shares = memory_selection(p, cands);
    expect_valid_shares(p, shares);
    // No processor appears twice.
    std::vector<index_t> procs;
    for (const auto& s : shares) procs.push_back(s.proc);
    std::sort(procs.begin(), procs.end());
    EXPECT_TRUE(std::adjacent_find(procs.begin(), procs.end()) ==
                procs.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemorySelectionProperty,
                         ::testing::Range(1, 6));

TEST(WorkloadSelection, PrefersLessLoadedThanMaster) {
  SelectionProblem p{.nfront = 100, .npiv = 20, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 500}, {1, 2000}, {2, 100}, {3, 900}};
  const count_t master_load = 1000;
  const auto shares =
      workload_selection(p, cands, master_load, /*master_task_flops=*/100000);
  expect_valid_shares(p, shares);
  for (const auto& s : shares) EXPECT_NE(s.proc, 1);  // 2000 > master
}

TEST(WorkloadSelection, FallsBackToLeastLoaded) {
  SelectionProblem p{.nfront = 50, .npiv = 10, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 5000}, {1, 9000}};
  const auto shares = workload_selection(p, cands, /*master_load=*/100,
                                         /*master_task_flops=*/1000);
  expect_valid_shares(p, shares);
  EXPECT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].proc, 0);
}

TEST(WorkloadSelection, RegularBlockingUnsymmetric) {
  SelectionProblem p{.nfront = 130, .npiv = 10, .symmetric = false,
                     .max_slaves = 4, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  // Tiny master task => many slaves, evenly split (Figure 3 left).
  const auto shares = workload_selection(p, cands, 10, 1);
  expect_valid_shares(p, shares);
  EXPECT_EQ(shares.size(), 4u);
  for (const auto& s : shares) EXPECT_EQ(s.rows, 30);
}

TEST(WorkloadSelection, IrregularBlockingSymmetric) {
  SelectionProblem p{.nfront = 120, .npiv = 20, .symmetric = true,
                     .max_slaves = 4, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const auto shares = workload_selection(p, cands, 10, 1);
  expect_valid_shares(p, shares);
  ASSERT_EQ(shares.size(), 4u);
  // Later rows are longer: equal-flop blocks shrink (Figure 3 right).
  EXPECT_GE(shares.front().rows, shares.back().rows);
  // ... but flops are balanced within a factor 2.
  count_t lo = shares[0].flops, hi = shares[0].flops;
  for (const auto& s : shares) {
    lo = std::min(lo, s.flops);
    hi = std::max(hi, s.flops);
  }
  EXPECT_LT(static_cast<double>(hi), 2.0 * static_cast<double>(lo));
}

TEST(WorkloadSelection, BigMasterTaskMeansFewSlaves) {
  SelectionProblem p{.nfront = 100, .npiv = 50, .symmetric = false,
                     .max_slaves = 8, .min_rows_per_slave = 1};
  std::vector<SlaveCandidate> cands;
  for (index_t q = 0; q < 8; ++q) cands.push_back({q, 0});
  // Master task dwarfs the slave work: one slave suffices.
  const auto huge = workload_selection(p, cands, 10, 1'000'000'000);
  expect_valid_shares(p, huge);
  EXPECT_EQ(huge.size(), 1u);
}

}  // namespace
}  // namespace memfront
