#include <gtest/gtest.h>

#include "memfront/ordering/ordering.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/stats.hpp"
#include "memfront/symbolic/mapping.hpp"

namespace memfront {
namespace {

struct Fixture {
  SymbolicResult symbolic;
  TreeMemory memory;
};

Fixture build(ProblemId pid, OrderingKind kind, double scale = 0.3) {
  const Problem p = make_problem(pid, scale);
  const Graph g = Graph::from_matrix(p.matrix);
  SymbolicOptions opt;
  opt.symmetric = p.symmetric;
  Fixture f{build_assembly_tree(g, compute_ordering(g, kind, 3), opt), {}};
  reorder_children_liu(f.symbolic.tree);
  f.memory = analyze_tree_memory(f.symbolic.tree);
  return f;
}

TEST(Subtrees, PartitionIsConsistent) {
  Fixture f = build(ProblemId::kXenon2, OrderingKind::kNestedDissection);
  const Subtrees st = find_subtrees(f.symbolic.tree, f.memory, 8);
  const AssemblyTree& tree = f.symbolic.tree;

  EXPECT_FALSE(st.roots.empty());
  EXPECT_EQ(st.proc.size(), st.roots.size());
  EXPECT_EQ(st.flops.size(), st.roots.size());

  // Membership closure: a node is in a subtree iff its subtree root is an
  // ancestor-or-self; children of subtree members are members of the same.
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    const index_t s = st.node_subtree[static_cast<std::size_t>(i)];
    if (s == kNone) continue;
    for (index_t c : tree.children(i))
      EXPECT_EQ(st.node_subtree[static_cast<std::size_t>(c)], s);
  }
  // Upper part is closed upward: the parent of an upper node is upper.
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    if (st.node_subtree[static_cast<std::size_t>(i)] != kNone) continue;
    const index_t par = tree.parent(i);
    if (par != kNone)
      EXPECT_EQ(st.node_subtree[static_cast<std::size_t>(par)], kNone);
  }
}

TEST(Subtrees, LptBalancesWork) {
  Fixture f =
      build(ProblemId::kBmwCra1, OrderingKind::kNestedDissection, 0.7);
  const index_t P = 8;
  const Subtrees st = find_subtrees(f.symbolic.tree, f.memory, P,
                                    {.balance_factor = 4.0});
  ASSERT_GE(st.roots.size(), static_cast<std::size_t>(P));
  std::vector<count_t> load(static_cast<std::size_t>(P), 0);
  count_t max_subtree = 0;
  for (std::size_t s = 0; s < st.roots.size(); ++s) {
    ASSERT_GE(st.proc[s], 0);
    ASSERT_LT(st.proc[s], P);
    load[static_cast<std::size_t>(st.proc[s])] += st.flops[s];
    max_subtree = std::max(max_subtree, st.flops[s]);
  }
  // Every processor gets some subtree work, and LPT's guarantee holds:
  // max load <= average + largest item.
  EXPECT_GT(min_value(std::span<const count_t>(load)), 0);
  const double avg = mean(std::span<const count_t>(load));
  EXPECT_LE(static_cast<double>(max_value(std::span<const count_t>(load))),
            avg + static_cast<double>(max_subtree) + 1.0);
}

TEST(Subtrees, BalanceFactorControlsGranularity) {
  Fixture f = build(ProblemId::kMsdoor, OrderingKind::kAmd);
  const Subtrees coarse = find_subtrees(f.symbolic.tree, f.memory, 4,
                                        {.balance_factor = 1.0});
  const Subtrees fine = find_subtrees(f.symbolic.tree, f.memory, 4,
                                      {.balance_factor = 8.0});
  EXPECT_GE(fine.roots.size(), coarse.roots.size());
}

TEST(Subtrees, PeaksComeFromTreeMemory) {
  Fixture f = build(ProblemId::kTwotone, OrderingKind::kAmf);
  const Subtrees st = find_subtrees(f.symbolic.tree, f.memory, 8);
  for (std::size_t s = 0; s < st.roots.size(); ++s)
    EXPECT_EQ(st.peak[s],
              f.memory.subtree_peak[static_cast<std::size_t>(st.roots[s])]);
}

TEST(Mapping, TypesAreConsistent) {
  Fixture f = build(ProblemId::kUltrasound3, OrderingKind::kNestedDissection);
  MappingOptions opt;
  opt.nprocs = 16;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  const AssemblyTree& tree = f.symbolic.tree;

  index_t type3_count = 0;
  for (index_t i = 0; i < tree.num_nodes(); ++i) {
    switch (m.type[static_cast<std::size_t>(i)]) {
      case NodeType::kType1:
        ASSERT_NE(m.owner[static_cast<std::size_t>(i)], kNone);
        break;
      case NodeType::kType2:
        // Subtree nodes are never type 2; type 2 needs rows for slaves.
        EXPECT_FALSE(m.subtrees.in_subtree(i));
        EXPECT_GT(tree.ncb(i), 0);
        EXPECT_GE(tree.nfront(i), m.type2_min_front);
        ASSERT_NE(m.owner[static_cast<std::size_t>(i)], kNone);
        break;
      case NodeType::kType3:
        ++type3_count;
        EXPECT_EQ(tree.parent(i), kNone);
        EXPECT_GE(tree.nfront(i), m.type3_min_front);
        break;
    }
    if (m.owner[static_cast<std::size_t>(i)] != kNone) {
      EXPECT_GE(m.owner[static_cast<std::size_t>(i)], 0);
      EXPECT_LT(m.owner[static_cast<std::size_t>(i)], opt.nprocs);
    }
  }
  EXPECT_LE(type3_count, 1);
}

TEST(Mapping, SubtreeNodesInheritSubtreeProcessor) {
  Fixture f = build(ProblemId::kShip003, OrderingKind::kPord);
  MappingOptions opt;
  opt.nprocs = 8;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  for (index_t i = 0; i < f.symbolic.tree.num_nodes(); ++i) {
    const index_t s = m.subtrees.node_subtree[static_cast<std::size_t>(i)];
    if (s == kNone) continue;
    EXPECT_EQ(m.owner[static_cast<std::size_t>(i)],
              m.subtrees.proc[static_cast<std::size_t>(s)]);
    EXPECT_EQ(m.type[static_cast<std::size_t>(i)], NodeType::kType1);
  }
}

TEST(Mapping, FactorMemoryBalancedAcrossOwners) {
  Fixture f =
      build(ProblemId::kBmwCra1, OrderingKind::kNestedDissection, 0.6);
  MappingOptions opt;
  opt.nprocs = 8;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  std::vector<count_t> factor(8, 0);
  count_t max_item = 0;
  for (index_t i = 0; i < f.symbolic.tree.num_nodes(); ++i) {
    if (m.subtrees.in_subtree(i)) continue;
    const index_t o = m.owner[static_cast<std::size_t>(i)];
    if (o == kNone) continue;
    factor[static_cast<std::size_t>(o)] += f.symbolic.tree.factor_entries(i);
    max_item = std::max(max_item, f.symbolic.tree.factor_entries(i));
  }
  // Greedy largest-first guarantee: max load <= average + largest item.
  const double avg = mean(std::span<const count_t>(factor));
  EXPECT_LE(static_cast<double>(max_value(std::span<const count_t>(factor))),
            avg + static_cast<double>(max_item) + 1.0);
}

TEST(Mapping, SingleProcessorDegeneratesToType1) {
  Fixture f = build(ProblemId::kTwotone, OrderingKind::kAmd, 0.25);
  MappingOptions opt;
  opt.nprocs = 1;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  for (index_t i = 0; i < f.symbolic.tree.num_nodes(); ++i) {
    EXPECT_EQ(m.type[static_cast<std::size_t>(i)], NodeType::kType1);
    EXPECT_EQ(m.owner[static_cast<std::size_t>(i)], 0);
  }
}

TEST(Mapping, Type2DisabledLeavesOnlyType1AndRoot) {
  Fixture f = build(ProblemId::kUltrasound3, OrderingKind::kNestedDissection);
  MappingOptions opt;
  opt.nprocs = 16;
  opt.enable_type2 = false;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  for (index_t i = 0; i < f.symbolic.tree.num_nodes(); ++i)
    EXPECT_NE(m.type[static_cast<std::size_t>(i)], NodeType::kType2);
}

TEST(Mapping, FlopsConcentrateInUpperPartOnManyProcs) {
  // Sanity check of the paper's claim that most flops live in the upper
  // part (type 2) on large processor counts.
  Fixture f = build(ProblemId::kBmwCra1, OrderingKind::kNestedDissection, 0.4);
  MappingOptions opt;
  opt.nprocs = 32;
  const StaticMapping m = compute_mapping(f.symbolic.tree, f.memory, opt);
  count_t upper = 0, total = 0;
  for (index_t i = 0; i < f.symbolic.tree.num_nodes(); ++i) {
    const count_t fl = f.symbolic.tree.flops(i);
    total += fl;
    if (!m.subtrees.in_subtree(i)) upper += fl;
  }
  EXPECT_GT(static_cast<double>(upper), 0.5 * static_cast<double>(total));
}

}  // namespace
}  // namespace memfront
