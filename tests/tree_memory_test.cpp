#include <gtest/gtest.h>

#include <algorithm>

#include "memfront/ordering/ordering.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/rng.hpp"
#include "memfront/symbolic/assembly_tree.hpp"
#include "memfront/symbolic/tree_memory.hpp"

namespace memfront {
namespace {

/// Hand-built tree: two leaves under a root.
/// Leaf fronts 4x4 with 2 pivots (cb 2x2), root 4x4 full.
AssemblyTree small_tree() {
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = 2, .npiv = 2, .nfront = 4, .first_col = 0},
      {.parent = 2, .npiv = 2, .nfront = 4, .first_col = 2},
      {.parent = kNone, .npiv = 4, .nfront = 4, .first_col = 4},
  };
  return AssemblyTree(std::move(nodes), false, 8);
}

TEST(TreeMemory, HandComputedPeak) {
  const AssemblyTree tree = small_tree();
  const TreeMemory m = analyze_tree_memory(tree);
  // Leaf: peak 16 (front), leaves a 4-entry CB.
  EXPECT_EQ(m.subtree_peak[0], 16);
  EXPECT_EQ(m.subtree_peak[1], 16);
  // Root: max( peak(c1)=16, cb1+peak(c2)=20, cb1+cb2+front=24 ) = 24.
  EXPECT_EQ(m.subtree_peak[2], 24);
  EXPECT_EQ(m.peak, 24);
}

TEST(TreeMemory, ChildOrderMatters) {
  // One heavy child (peak 100, cb 1) and one light child (peak 10, cb 9):
  // heavy-first gives max(100, 1+10, 1+9+front) vs light-first
  // max(10, 9+100, ...) — Liu's order (peak-cb descending) wins.
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{
      {.parent = 2, .npiv = 9, .nfront = 10, .first_col = 0},   // peak 100
      {.parent = 2, .npiv = 1, .nfront = 4, .first_col = 9},    // peak 16,cb 9
      {.parent = kNone, .npiv = 4, .nfront = 4, .first_col = 10},
  };
  AssemblyTree tree(std::move(nodes), false, 14);
  // Force the bad order: child 1 (light) first.
  tree.mutable_children(2) = {1, 0};
  const count_t bad = analyze_tree_memory(tree).peak;
  const count_t good = reorder_children_liu(tree);
  EXPECT_EQ(tree.children(2)[0], 0);  // heavy child first
  EXPECT_LT(good, bad);
  EXPECT_EQ(good, analyze_tree_memory(tree).peak);
}

/// Random tree generator for the optimality property test.
AssemblyTree random_tree(index_t num_nodes, std::uint64_t seed) {
  using Node = AssemblyTree::Node;
  Rng rng(seed);
  std::vector<Node> nodes(static_cast<std::size_t>(num_nodes));
  index_t col = 0;
  for (index_t i = 0; i < num_nodes; ++i) {
    Node& nd = nodes[static_cast<std::size_t>(i)];
    nd.parent = i + 1 < num_nodes
                    ? i + 1 + static_cast<index_t>(
                                  rng.below(static_cast<std::uint64_t>(
                                      num_nodes - i)))
                    : kNone;
    if (nd.parent >= num_nodes) nd.parent = kNone;
    nd.npiv = 1 + static_cast<index_t>(rng.below(4));
    const index_t root_bonus = nd.parent == kNone ? 0 : 1 + static_cast<index_t>(rng.below(6));
    nd.nfront = nd.npiv + root_bonus;
    nd.first_col = col;
    col += nd.npiv;
  }
  return AssemblyTree(std::move(nodes), false, col);
}

count_t peak_with_child_order(const AssemblyTree& tree) {
  return analyze_tree_memory(tree).peak;
}

TEST(TreeMemory, LiuOrderIsOptimalOnSmallTrees) {
  // Property: Liu's order achieves the minimum over all child
  // permutations (checked by brute force on every node independently —
  // the objective decomposes per node).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AssemblyTree tree = random_tree(7, seed);
    const count_t liu = reorder_children_liu(tree);
    // Brute force: try all permutations of every node's children (nodes
    // have few children at this size).
    count_t best = liu;
    for (index_t i = 0; i < tree.num_nodes(); ++i) {
      auto& children = tree.mutable_children(i);
      if (children.size() < 2) continue;
      std::vector<index_t> saved = children;
      std::sort(children.begin(), children.end());
      do {
        best = std::min(best, peak_with_child_order(tree));
      } while (std::next_permutation(children.begin(), children.end()));
      children = saved;
    }
    EXPECT_LE(liu, best) << "seed " << seed;
  }
}

TEST(TreeMemory, SubtreePeakMonotoneUpward) {
  const Problem p = make_problem(ProblemId::kXenon2, 0.25);
  const Graph g = Graph::from_matrix(p.matrix);
  SymbolicOptions opt;
  const SymbolicResult r = build_assembly_tree(g, amd_order(g), opt);
  const TreeMemory m = analyze_tree_memory(r.tree);
  for (index_t i = 0; i < r.tree.num_nodes(); ++i) {
    EXPECT_GE(m.subtree_peak[static_cast<std::size_t>(i)],
              r.tree.front_entries(i));
    if (r.tree.parent(i) != kNone)
      EXPECT_GE(m.subtree_peak[static_cast<std::size_t>(r.tree.parent(i))],
                m.subtree_peak[static_cast<std::size_t>(i)]);
  }
}

TEST(TreeMemory, LiuNeverWorseOnRealProblems) {
  for (ProblemId pid : {ProblemId::kMsdoor, ProblemId::kTwotone}) {
    const Problem p = make_problem(pid, 0.3);
    const Graph g = Graph::from_matrix(p.matrix);
    SymbolicOptions opt;
    opt.symmetric = p.symmetric;
    SymbolicResult r = build_assembly_tree(g, amf_order(g), opt);
    const count_t before = analyze_tree_memory(r.tree).peak;
    const count_t after = reorder_children_liu(r.tree);
    EXPECT_LE(after, before) << problem_name(pid);
  }
}

TEST(TreeMemory, SingleNodePeakIsFront) {
  using Node = AssemblyTree::Node;
  std::vector<Node> nodes{{.parent = kNone, .npiv = 3, .nfront = 3,
                           .first_col = 0}};
  const AssemblyTree tree(std::move(nodes), true, 3);
  const TreeMemory m = analyze_tree_memory(tree);
  EXPECT_EQ(m.peak, triangle(3));
}

}  // namespace
}  // namespace memfront
