// Coverage of the dynamic, policy-consulted worker-pool scheduler
// (solver/scheduler):
//   - bitwise identity to the serial driver at 1/2/4/8 workers, for
//     both policies, with stealing on and off (the PR-5 goldens pin the
//     serial driver, so identity to it is identity to the goldens),
//   - determinism mode (steal=off) reproduces the static schedule:
//     zero steals, bit-identical reruns,
//   - steal-storm stress: a 1-wide chain tree with 8 workers — every
//     upper task readies one at a time, everyone fights over it,
//   - policy-consultation counting through a mock SchedulerPolicy: the
//     pool consults select_task and admit for every dispatched task,
//     and the OOC coordinator consults per reservation admission,
//   - the targeted-wakeup discipline: wakeups stay near the number of
//     readied tasks instead of completions x workers.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "memfront/frontal/arena.hpp"
#include "memfront/solver/parallel_numeric.hpp"
#include "memfront/solver/scheduler.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_bitwise_equal(const Factorization& a, const Factorization& b,
                          const std::string& label) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << label;
  EXPECT_EQ(a.row_of, b.row_of) << label << ": pivot sequences differ";
  EXPECT_EQ(a.stats.factor_entries, b.stats.factor_entries) << label;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(a.nodes[i].panel, b.nodes[i].panel))
        << label << ": panel of node " << i;
    ASSERT_TRUE(bitwise_equal(a.nodes[i].u12, b.nodes[i].u12))
        << label << ": u12 of node " << i;
  }
}

Analysis analyzed_problem(ProblemId id, double scale, OrderingKind ord) {
  const Problem p = make_problem(id, scale);
  AnalysisOptions opt;
  opt.ordering = ord;
  return analyze(p.matrix, opt);
}

/// A 1-wide (chain) assembly tree: tridiagonal matrix under the natural
/// ordering — every node has exactly one child, so at most one task is
/// ever ready and 8 workers stampede over it.
CscMatrix chain_matrix(index_t n) {
  std::vector<count_t> colptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> rowind;
  std::vector<double> values;
  for (index_t j = 0; j < n; ++j) {
    if (j > 0) {
      rowind.push_back(j - 1);
      values.push_back(-1.0);
    }
    rowind.push_back(j);
    values.push_back(4.0 + 0.01 * static_cast<double>(j % 7));
    if (j + 1 < n) {
      rowind.push_back(j + 1);
      values.push_back(-1.0);
    }
    colptr[static_cast<std::size_t>(j) + 1] =
        static_cast<count_t>(rowind.size());
  }
  return CscMatrix(n, n, std::move(colptr), std::move(rowind),
                   std::move(values));
}

TEST(Scheduler, BitIdenticalAcrossPoliciesWorkersAndStealing) {
  const Analysis analysis =
      analyzed_problem(ProblemId::kXenon2, 0.16, OrderingKind::kAmd);
  const Factorization serial = numeric_factorize(analysis);
  for (RealPolicy policy : {RealPolicy::kWorkload, RealPolicy::kMemory}) {
    for (bool steal : {false, true}) {
      for (unsigned nthreads : {1u, 2u, 4u, 8u}) {
        ParallelNumericOptions popt;
        popt.nthreads = nthreads;
        popt.nprocs = 8;  // fixed mapping regardless of the host
        popt.sched.policy = policy;
        popt.sched.steal = steal;
        ParallelNumericStats stats;
        const Factorization fact =
            parallel_numeric_factorize(analysis, popt, &stats);
        const std::string label = std::string(real_policy_name(policy)) +
                                  (steal ? "/steal" : "/static") +
                                  "/workers=" + std::to_string(nthreads);
        expect_bitwise_equal(serial, fact, label);
        if (!steal) EXPECT_EQ(stats.sched.steals, 0u) << label;
        EXPECT_EQ(stats.sched.completions,
                  static_cast<std::uint64_t>(stats.num_subtrees) +
                      static_cast<std::uint64_t>(stats.num_upper_nodes))
            << label;
      }
    }
  }
}

TEST(Scheduler, DeterminismModeIsRepeatableWithZeroSteals) {
  const Analysis analysis =
      analyzed_problem(ProblemId::kTwotone, 0.16, OrderingKind::kAmf);
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  popt.nprocs = 4;
  popt.sched.steal = false;
  ParallelNumericStats s1, s2;
  const Factorization a = parallel_numeric_factorize(analysis, popt, &s1);
  const Factorization b = parallel_numeric_factorize(analysis, popt, &s2);
  expect_bitwise_equal(a, b, "determinism rerun");
  EXPECT_EQ(s1.sched.steals, 0u);
  EXPECT_EQ(s2.sched.steals, 0u);
  EXPECT_EQ(s1.sched.steal_chunks, 0u);
  EXPECT_FALSE(s1.steal);
  EXPECT_STREQ(s1.policy, "workload");
}

TEST(Scheduler, StealStormOnChainTree) {
  // 1-wide tree, 8 workers: at most one ready task exists at any time,
  // so seven workers continuously try to steal it. The result must
  // still match the serial driver bit for bit and every task must run
  // exactly once.
  const CscMatrix a = chain_matrix(600);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kNatural;
  const Analysis analysis = analyze(a, opt);
  const Factorization serial = numeric_factorize(analysis);
  for (RealPolicy policy : {RealPolicy::kWorkload, RealPolicy::kMemory}) {
    ParallelNumericOptions popt;
    popt.nthreads = 8;
    popt.nprocs = 8;
    popt.sched.policy = policy;
    ParallelNumericStats stats;
    const Factorization fact =
        parallel_numeric_factorize(analysis, popt, &stats);
    expect_bitwise_equal(serial, fact, real_policy_name(policy));
    EXPECT_EQ(stats.sched.completions,
              static_cast<std::uint64_t>(stats.num_subtrees) +
                  static_cast<std::uint64_t>(stats.num_upper_nodes));
  }
}

/// Mock policy: LIFO dispatch, flat steal metric, instant admission —
/// counts every consultation.
class CountingPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "counting"; }
  std::size_t select_task(const TaskQuery& query) override {
    ++select_task_calls;
    last_pool_size = query.pool.size();
    return query.pool.size() - 1;
  }
  count_t slave_metric(index_t, const SlaveQuery&) const override {
    ++slave_metric_calls;
    return 0;
  }
  std::vector<SlaveShare> select_slaves(
      const SlaveQuery&, std::vector<SlaveCandidate>) override {
    ++select_slaves_calls;
    return {};
  }
  double admit(index_t, count_t) override {
    ++admit_calls;
    return 0.0;
  }

  std::size_t select_task_calls = 0;
  mutable std::size_t slave_metric_calls = 0;
  std::size_t select_slaves_calls = 0;
  std::size_t admit_calls = 0;
  std::size_t last_pool_size = 0;
};

TEST(Scheduler, EveryDispatchAndAdmissionConsultsThePolicy) {
  const Analysis analysis =
      analyzed_problem(ProblemId::kXenon2, 0.16, OrderingKind::kAmd);
  CountingPolicy counting;
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  popt.nprocs = 4;
  popt.sched.policy_override = &counting;
  ParallelNumericStats stats;
  const Factorization fact =
      parallel_numeric_factorize(analysis, popt, &stats);
  const std::size_t tasks = static_cast<std::size_t>(stats.num_subtrees) +
                            static_cast<std::size_t>(stats.num_upper_nodes);
  ASSERT_GT(tasks, 0u);
  // One select_task per dispatched task, one admit per activation.
  EXPECT_EQ(counting.select_task_calls, tasks);
  EXPECT_EQ(counting.admit_calls, tasks);
  EXPECT_EQ(stats.sched.dispatch_consults, tasks);
  EXPECT_EQ(stats.sched.admit_consults, tasks);
  EXPECT_STREQ(stats.policy, "counting");
  // The mock still produces the canonical result: it only reorders.
  expect_bitwise_equal(numeric_factorize(analysis), fact, "counting policy");
}

TEST(Scheduler, OocAdmissionsConsultThePolicyPerReservation) {
#if MEMFRONT_OOC_REAL
  const Analysis analysis =
      analyzed_problem(ProblemId::kTwotone, 0.14, OrderingKind::kAmd);
  CountingPolicy counting;
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  popt.nprocs = 4;
  popt.sched.policy_override = &counting;
  popt.ooc.enabled = true;
  popt.ooc.budget_doubles = 0;  // unlimited: no spills, still admitted
  popt.ooc.spill_factors = false;
  ParallelNumericStats stats;
  const Factorization fact =
      parallel_numeric_factorize(analysis, popt, &stats);
  // Every node passes one begin_node reservation through the policy.
  EXPECT_EQ(fact.stats.ooc.policy_admissions, analysis.tree.num_nodes());
  const std::size_t tasks = static_cast<std::size_t>(stats.num_subtrees) +
                            static_cast<std::size_t>(stats.num_upper_nodes);
  // Dispatch admissions plus one per reservation.
  EXPECT_EQ(counting.admit_calls,
            tasks + static_cast<std::size_t>(analysis.tree.num_nodes()));
  expect_bitwise_equal(numeric_factorize(analysis), fact, "ooc counting");
#else
  GTEST_SKIP() << "MEMFRONT_OOC_REAL=OFF";
#endif
}

TEST(Scheduler, TargetedWakeupsStayFarBelowBroadcast) {
  const Analysis analysis =
      analyzed_problem(ProblemId::kXenon2, 0.16, OrderingKind::kAmd);
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  popt.nprocs = 4;
  ParallelNumericStats stats;
  (void)parallel_numeric_factorize(analysis, popt, &stats);
  const std::uint64_t completions = stats.sched.completions;
  ASSERT_GT(completions, 0u);
  // The old pool broadcast on every completion: completions x (workers)
  // notifies. Targeted wakeups fire only for readied tasks, steal
  // cascades, and the final drain.
  EXPECT_LE(stats.sched.wakeups,
            completions + stats.sched.steal_chunks + stats.workers);
}

TEST(Scheduler, StealBoundHelpersAreConsistent) {
  const Analysis analysis =
      analyzed_problem(ProblemId::kXenon2, 0.16, OrderingKind::kAmd);
  const Subtrees subtrees = find_subtrees(analysis.tree, analysis.memory, 4);
  std::vector<std::vector<index_t>> subtree_nodes;
  std::vector<index_t> upper_nodes;
  split_subtree_nodes(subtrees, analysis.traversal, subtree_nodes,
                      upper_nodes);
  // Every node lands in exactly one bucket, in traversal order.
  std::size_t total = upper_nodes.size();
  for (const auto& nodes : subtree_nodes) total += nodes.size();
  EXPECT_EQ(total, analysis.traversal.size());
  const count_t bound = predict_steal_arena_bound(analysis.tree, subtrees,
                                                  subtree_nodes, upper_nodes);
  const count_t serial_peak =
      predict_arena_peak(analysis.tree, analysis.traversal);
  EXPECT_GT(bound, 0);
  EXPECT_LE(bound, serial_peak);
  // Per-subtree peaks are exact serial sub-traversal peaks and can
  // never exceed the bound.
  for (std::size_t s = 0; s < subtree_nodes.size(); ++s)
    EXPECT_LE(predict_subtree_arena_peak(analysis.tree, subtree_nodes[s],
                                         subtrees.roots[s]),
              bound);
}

}  // namespace
}  // namespace memfront
