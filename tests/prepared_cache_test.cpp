// The two-level prepared-experiment cache: content keying, level reuse,
// stats accounting, and thread safety under the sweep's thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "memfront/core/prepared_cache.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/parallel_for.hpp"

namespace memfront {
namespace {

ExperimentSetup small_setup(const Problem& p, index_t nprocs = 8) {
  ExperimentSetup setup;
  setup.nprocs = nprocs;
  setup.symmetric = p.symmetric;
  setup.ordering = OrderingKind::kNestedDissection;
  return setup;
}

TEST(PreparedCache, EqualSetupsShareOnePreparation) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kTwotone, 0.2);
  const auto a = cache.prepared(p.matrix, small_setup(p));
  const auto b = cache.prepared(p.matrix, small_setup(p));
  EXPECT_EQ(a.get(), b.get());  // the same immutable object, not a copy
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.mapping_misses, 1u);
  EXPECT_EQ(stats.mapping_hits, 1u);
  EXPECT_EQ(stats.analysis_misses, 1u);
  EXPECT_EQ(cache.mapping_entries(), 1u);
  EXPECT_EQ(cache.analysis_entries(), 1u);
}

TEST(PreparedCache, KeysOnMatrixContentNotObjectIdentity) {
  PreparedCache cache;
  const Problem p1 = make_problem(ProblemId::kXenon2, 0.2);
  const Problem p2 = make_problem(ProblemId::kXenon2, 0.2);
  ASSERT_NE(&p1.matrix, &p2.matrix);
  EXPECT_EQ(p1.matrix.fingerprint(), p2.matrix.fingerprint());
  const auto a = cache.prepared(p1.matrix, small_setup(p1));
  const auto b = cache.prepared(p2.matrix, small_setup(p2));
  EXPECT_EQ(a.get(), b.get());
  // A different matrix (other scale) is a different key.
  const Problem p3 = make_problem(ProblemId::kXenon2, 0.25);
  EXPECT_NE(p3.matrix.fingerprint(), p1.matrix.fingerprint());
  const auto c = cache.prepared(p3.matrix, small_setup(p3));
  EXPECT_NE(a.get(), c.get());
}

TEST(PreparedCache, DynamicStrategyFieldsDoNotSplitTheKey) {
  // The paper's headline comparison: workload vs memory dynamic
  // strategies on the same static decisions — one cache entry.
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kShip003, 0.2);
  ExperimentSetup workload = small_setup(p);
  ExperimentSetup memory = small_setup(p);
  memory.slave_strategy = SlaveStrategy::kMemoryImproved;
  memory.task_strategy = TaskStrategy::kMemoryAware;
  memory.ooc.enabled = true;
  memory.ooc.budget = 12345;
  const auto a = cache.prepared(p.matrix, workload);
  const auto b = cache.prepared(p.matrix, memory);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().mapping_misses, 1u);
  EXPECT_EQ(cache.stats().mapping_hits, 1u);
}

TEST(PreparedCache, MappingLevelReusesTheAnalysisLevel) {
  // Different nprocs: new mapping, same analysis object underneath.
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kMsdoor, 0.2);
  const auto p8 = cache.prepared(p.matrix, small_setup(p, 8));
  const auto p16 = cache.prepared(p.matrix, small_setup(p, 16));
  EXPECT_NE(p8.get(), p16.get());
  EXPECT_EQ(p8->analysis.get(), p16->analysis.get());
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.mapping_misses, 2u);
  EXPECT_EQ(stats.analysis_misses, 1u);
  EXPECT_EQ(stats.analysis_hits, 1u);  // second mapping found the analysis
  EXPECT_EQ(cache.analysis_entries(), 1u);
  EXPECT_EQ(cache.mapping_entries(), 2u);

  // A different ordering invalidates the analysis level too.
  ExperimentSetup amd = small_setup(p, 8);
  amd.ordering = OrderingKind::kAmd;
  const auto pa = cache.prepared(p.matrix, amd);
  EXPECT_NE(pa->analysis.get(), p8->analysis.get());
  EXPECT_EQ(cache.analysis_entries(), 2u);

  // So do the split parameters and the seed.
  ExperimentSetup split = small_setup(p, 8);
  split.split_threshold = 5000;
  ExperimentSetup seeded = small_setup(p, 8);
  seeded.seed = 42;
  EXPECT_NE(cache.prepared(p.matrix, split)->analysis.get(),
            p8->analysis.get());
  EXPECT_NE(cache.prepared(p.matrix, seeded)->analysis.get(),
            p8->analysis.get());
  EXPECT_EQ(cache.analysis_entries(), 4u);
}

TEST(PreparedCache, CachedPreparationMatchesUncachedPrepare) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kPre2, 0.2);
  const ExperimentSetup setup = small_setup(p);
  const auto cached = cache.prepared(p.matrix, setup);
  const PreparedExperiment fresh = prepare_experiment(p.matrix, setup);
  const ExperimentOutcome a = run_prepared(*cached, setup);
  const ExperimentOutcome b = run_prepared(fresh, setup);
  EXPECT_EQ(a.max_stack_peak, b.max_stack_peak);
  EXPECT_EQ(a.makespan, b.makespan);  // bit-identical
  EXPECT_EQ(a.parallel.messages, b.parallel.messages);
  EXPECT_EQ(a.parallel.comm_entries, b.parallel.comm_entries);
}

TEST(PreparedCache, PhaseTimingsAccumulateOnMisses) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kUltrasound3, 0.2);
  (void)cache.prepared(p.matrix, small_setup(p));
  const PreparedCacheStats stats = cache.stats();
  EXPECT_GT(stats.analysis_seconds, 0.0);
  EXPECT_GT(stats.ordering_seconds, 0.0);
  EXPECT_GE(stats.symbolic_seconds, 0.0);
  EXPECT_GE(stats.mapping_seconds, 0.0);
  EXPECT_EQ(stats.recomputes, 2u);  // one analysis + one mapping

  cache.reset_stats();
  EXPECT_EQ(cache.stats().recomputes, 0u);
  EXPECT_EQ(cache.stats().analysis_seconds, 0.0);
  // Stats reset does not drop entries.
  EXPECT_EQ(cache.mapping_entries(), 1u);
}

TEST(PreparedCache, ClearDropsEntriesButOutstandingPointersSurvive) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kBmwCra1, 0.2);
  const auto before = cache.prepared(p.matrix, small_setup(p));
  cache.clear();
  EXPECT_EQ(cache.mapping_entries(), 0u);
  EXPECT_EQ(cache.analysis_entries(), 0u);
  EXPECT_GT(before->analysis->tree.num_nodes(), 0);  // still alive
  const auto after = cache.prepared(p.matrix, small_setup(p));
  EXPECT_NE(before.get(), after.get());  // recomputed after clear
}

TEST(PreparedCache, ConcurrentLookupsComputeOnce) {
  // Many threads race on the same two keys (the sweep's strategy legs):
  // every caller must get the same object and the computation must run
  // once per unique key, no matter the interleaving.
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kTwotone, 0.2);
  constexpr std::size_t kCallers = 32;
  std::vector<std::shared_ptr<const PreparedExperiment>> got(kCallers);
  parallel_for(
      kCallers,
      [&](std::size_t i) {
        // Even callers ask for 8 procs, odd for 16: two mapping keys over
        // one shared analysis.
        got[i] = cache.prepared(p.matrix,
                                small_setup(p, i % 2 == 0 ? 8 : 16));
      },
      8);
  for (std::size_t i = 2; i < kCallers; ++i)
    EXPECT_EQ(got[i].get(), got[i - 2].get());
  EXPECT_NE(got[0].get(), got[1].get());
  EXPECT_EQ(got[0]->analysis.get(), got[1]->analysis.get());
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.mapping_misses, 2u);
  EXPECT_EQ(stats.mapping_hits, kCallers - 2);
  EXPECT_EQ(stats.analysis_misses, 1u);
  EXPECT_EQ(stats.recomputes, 3u);  // one analysis + two mappings
  EXPECT_EQ(cache.analysis_entries(), 1u);
  EXPECT_EQ(cache.mapping_entries(), 2u);
}

TEST(PreparedCache, GlobalCacheIsAProcessSingleton) {
  EXPECT_EQ(&PreparedCache::global(), &PreparedCache::global());
}

TEST(PreparedCacheEviction, UnboundedByDefault) {
  PreparedCache cache;
  EXPECT_EQ(cache.capacity_bytes(), 0u);
  for (ProblemId id :
       {ProblemId::kTwotone, ProblemId::kXenon2, ProblemId::kMsdoor}) {
    const Problem p = make_problem(id, 0.2);
    (void)cache.prepared(p.matrix, small_setup(p));
  }
  EXPECT_EQ(cache.analysis_entries(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_GT(cache.retained_bytes(), 0u);
}

TEST(PreparedCacheEviction, LruBoundEvictsOldestAnalyses) {
  PreparedCache cache;
  const Problem p1 = make_problem(ProblemId::kTwotone, 0.2);
  const Problem p2 = make_problem(ProblemId::kXenon2, 0.2);
  const Problem p3 = make_problem(ProblemId::kMsdoor, 0.2);
  const auto a1 = cache.analysis(p1.matrix, {});
  // A capacity just above one retained analysis: every further analysis
  // evicts the least recently used one.
  cache.set_capacity_bytes(cache.retained_bytes() + 1);
  (void)cache.analysis(p2.matrix, {});
  EXPECT_EQ(cache.stats().evictions, 1u);  // p1 aged out
  EXPECT_EQ(cache.analysis_entries(), 1u);
  EXPECT_LE(cache.retained_bytes(), cache.capacity_bytes());
  (void)cache.analysis(p3.matrix, {});
  EXPECT_EQ(cache.stats().evictions, 2u);
  // The outstanding pointer to the evicted analysis stays valid.
  EXPECT_GT(a1->tree.num_nodes(), 0);
  // Re-asking for the evicted key is a fresh miss, not a hit.
  const PreparedCacheStats before = cache.stats();
  (void)cache.analysis(p1.matrix, {});
  EXPECT_EQ(cache.stats().analysis_misses, before.analysis_misses + 1);
}

TEST(PreparedCacheEviction, TouchKeepsHotEntriesResident) {
  PreparedCache cache;
  const Problem hot = make_problem(ProblemId::kTwotone, 0.2);
  const Problem cold = make_problem(ProblemId::kXenon2, 0.2);
  (void)cache.analysis(hot.matrix, {});
  const std::size_t one = cache.retained_bytes();
  (void)cache.analysis(cold.matrix, {});
  // Room for roughly one entry; touch `hot` so `cold` is the LRU victim.
  (void)cache.analysis(hot.matrix, {});
  cache.set_capacity_bytes(one + 1);
  EXPECT_GE(cache.stats().evictions, 1u);
  const PreparedCacheStats before = cache.stats();
  (void)cache.analysis(hot.matrix, {});  // still resident: a hit
  EXPECT_EQ(cache.stats().analysis_hits, before.analysis_hits + 1);
}

TEST(PreparedCacheEviction, OversizedSingleAnalysisStillCaches) {
  PreparedCache cache;
  cache.set_capacity_bytes(1);  // below any real analysis
  const Problem p = make_problem(ProblemId::kShip003, 0.2);
  (void)cache.analysis(p.matrix, {});
  // The most recently used entry is never evicted, so a bound smaller
  // than one analysis degrades to "cache of one", not "cache of none".
  EXPECT_EQ(cache.analysis_entries(), 1u);
  const PreparedCacheStats before = cache.stats();
  (void)cache.analysis(p.matrix, {});
  EXPECT_EQ(cache.stats().analysis_hits, before.analysis_hits + 1);
}

TEST(PreparedCacheEviction, EvictionDropsDependentMappings) {
  PreparedCache cache;
  const Problem p1 = make_problem(ProblemId::kTwotone, 0.2);
  const Problem p2 = make_problem(ProblemId::kXenon2, 0.2);
  (void)cache.prepared(p1.matrix, small_setup(p1, 8));
  (void)cache.prepared(p1.matrix, small_setup(p1, 16));
  EXPECT_EQ(cache.mapping_entries(), 2u);
  cache.set_capacity_bytes(cache.retained_bytes() + 1);
  (void)cache.prepared(p2.matrix, small_setup(p2));
  // p1's analysis was evicted; the two mappings built on it went along
  // (they retain the Analysis through shared_ptr, so keeping them would
  // silently defeat the byte bound).
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.analysis_entries(), 1u);
  EXPECT_EQ(cache.mapping_entries(), 1u);
}

TEST(PlannerMemo, SameSetupSharesOnePlan) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kTwotone, 0.2);
  const ExperimentSetup setup = small_setup(p);
  const auto a = cache.planner(p.matrix, setup);
  const auto b = cache.planner(p.matrix, setup);
  EXPECT_EQ(a.get(), b.get());
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.planner_misses, 1u);
  EXPECT_EQ(stats.planner_hits, 1u);
  EXPECT_GT(stats.planner_seconds, 0.0);
  EXPECT_EQ(cache.planner_entries(), 1u);
  EXPECT_GT(a->min_budget, 0);
  EXPECT_GE(a->incore_peak, a->min_budget);
}

TEST(PlannerMemo, MatchesUncachedPlanner) {
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kXenon2, 0.2);
  const ExperimentSetup setup = small_setup(p);
  const auto cached = cache.planner(p.matrix, setup);
  const PreparedExperiment fresh = prepare_experiment(p.matrix, setup);
  const PlannerResult direct = plan_minimum_budget(
      fresh.analysis->tree, fresh.analysis->memory, fresh.mapping,
      fresh.analysis->traversal, sched_config(setup));
  EXPECT_EQ(cached->min_budget, direct.min_budget);
  EXPECT_EQ(cached->incore_peak, direct.incore_peak);
  EXPECT_EQ(cached->at_min.makespan, direct.at_min.makespan);
}

TEST(PlannerMemo, BudgetAndEnableDoNotSplitTheKey) {
  // The planner overrides ooc.enabled/budget on every probe, so two
  // setups differing only there share one plan.
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kMsdoor, 0.2);
  ExperimentSetup on = small_setup(p);
  on.ooc.enabled = true;
  on.ooc.budget = 98765;
  const auto a = cache.planner(p.matrix, small_setup(p));
  const auto b = cache.planner(p.matrix, on);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().planner_misses, 1u);
}

TEST(PlannerMemo, DynamicStrategyAndDiskSplitTheKey) {
  // Unlike the mapping level, the planner consumes the dynamic strategy
  // and the disk model — those fields are part of its key.
  PreparedCache cache;
  const Problem p = make_problem(ProblemId::kTwotone, 0.2);
  const auto base = cache.planner(p.matrix, small_setup(p));
  ExperimentSetup memory = small_setup(p);
  memory.slave_strategy = SlaveStrategy::kMemoryImproved;
  memory.task_strategy = TaskStrategy::kMemoryAware;
  const auto strat = cache.planner(p.matrix, memory);
  EXPECT_NE(base.get(), strat.get());
  ExperimentSetup slow_disk = small_setup(p);
  slow_disk.ooc.disk.write_bandwidth /= 4;
  const auto disk = cache.planner(p.matrix, slow_disk);
  EXPECT_NE(base.get(), disk.get());
  PlannerOptions curve;
  curve.curve_points = 4;
  const auto curved = cache.planner(p.matrix, small_setup(p), curve);
  EXPECT_NE(base.get(), curved.get());
  if (curved->incore_peak > curved->min_budget)
    EXPECT_EQ(static_cast<index_t>(curved->curve.size()), 4);
  EXPECT_EQ(cache.stats().planner_misses, 4u);
  EXPECT_EQ(cache.planner_entries(), 4u);
  // All four reused one analysis/mapping underneath.
  EXPECT_EQ(cache.analysis_entries(), 1u);
  EXPECT_EQ(cache.mapping_entries(), 1u);
}

}  // namespace
}  // namespace memfront
