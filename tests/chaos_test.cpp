// The chaos harness: hundreds of deterministic seeded fault schedules
// swept over Table-1 problems x LU/LDLT x worker counts, asserting the
// hardened-execution contract on every single run —
//
//   either the run completes and its factors AND solution are
//   bit-identical to the fault-free baseline, or it fails with a clean
//   structured error from the taxonomy;
//
// never a crash, a hang, a silent wrong answer, or an uncategorized
// exception. Schedules are pure functions of the seed, so a failing
// seed reported by CI replays exactly under a debugger.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "memfront/core/experiment.hpp"
#include "memfront/solver/parallel_numeric.hpp"
#include "memfront/solver/solve.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/fault.hpp"
#include "memfront/support/status.hpp"

#if MEMFRONT_FAULTS

namespace memfront {
namespace {

constexpr double kScale = 0.14;
constexpr std::uint64_t kSeedsPerCase = 16;

/// The full execution-path fault surface, at periods chosen to mix clean
/// and failing schedules across the seed sweep.
fault::Plan chaos_plan(std::uint64_t seed) {
  return {.seed = seed,
          .period = 0,
          .overrides = {{"front.assemble_nan", 101},
                        {"arena.slab_alloc", 5},
                        {"worker.subtree_exception", 7},
                        {"worker.solve_exception", 7}}};
}

struct RunResult {
  ErrorCode code = ErrorCode::kOk;
  Factorization fact;
  std::vector<double> x;
};

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// One factorize + solve under whatever plan is armed. Every taxonomy
/// escape is captured; anything else propagates and fails the test.
/// `sched_seed` rotates the scheduler through its modes (steal on/off x
/// workload/memory policy) so the sweep — and the TSan build of it —
/// exercises every dispatch path; results are mode-independent, so the
/// bitwise baseline comparison stays valid.
RunResult run_once(const Analysis& analysis, const std::vector<double>& b,
                   unsigned workers, std::uint64_t sched_seed = 0) {
  RunResult r;
  try {
    ParallelNumericOptions popt;
    popt.nthreads = workers;
    popt.nprocs = 8;  // fixed mapping: bits must not depend on workers
    popt.sched.steal = (sched_seed % 2 == 0);
    popt.sched.policy =
        (sched_seed % 4 < 2) ? RealPolicy::kWorkload : RealPolicy::kMemory;
    r.fact = parallel_numeric_factorize(analysis, popt);
    SolveOptions sopt;
    sopt.nthreads = workers;
    sopt.nprocs = 8;
    r.x = solve_factorized_multi(analysis, r.fact, b, 1, sopt);
  } catch (const SolverError& e) {
    r.code = e.code();
  } catch (const InvalidInputError& e) {
    r.code = e.code();
  }
  return r;
}

void expect_bitwise_identical(const RunResult& run, const RunResult& base,
                              const std::string& label) {
  ASSERT_EQ(run.fact.nodes.size(), base.fact.nodes.size()) << label;
  EXPECT_EQ(run.fact.row_of, base.fact.row_of) << label;
  for (std::size_t i = 0; i < run.fact.nodes.size(); ++i) {
    ASSERT_TRUE(
        bitwise_equal(run.fact.nodes[i].panel, base.fact.nodes[i].panel))
        << label << ": panel of node " << i;
    ASSERT_TRUE(bitwise_equal(run.fact.nodes[i].u12, base.fact.nodes[i].u12))
        << label << ": u12 of node " << i;
  }
  EXPECT_TRUE(bitwise_equal(run.x, base.x)) << label << ": solution";
}

bool structured(ErrorCode code) {
  switch (code) {
    case ErrorCode::kPivotBreakdown:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kWorkerFailure:
      return true;
    default:
      return false;
  }
}

struct ChaosCase {
  ProblemId id;
  bool ldlt;
  unsigned workers;
};

class ChaosHarness : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosHarness, EverySeedIsBitIdenticalOrCleanlyStructured) {
  const auto [pid, ldlt, workers] = GetParam();
  const Problem p = make_problem(pid, kScale);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kNestedDissection;
  opt.symmetric = ldlt;
  const Analysis analysis = analyze(p.matrix, opt);
  std::vector<double> b(static_cast<std::size_t>(p.matrix.nrows()), 1.0);

  const RunResult baseline = run_once(analysis, b, workers);
  ASSERT_EQ(baseline.code, ErrorCode::kOk) << "fault-free baseline failed";

  int clean = 0, failed = 0;
  for (std::uint64_t seed = 0; seed < kSeedsPerCase; ++seed) {
    const std::string label = problem_name(pid) + " seed " +
                              std::to_string(seed) + " workers " +
                              std::to_string(workers);
    RunResult run;
    {
      fault::ScopedPlan scoped(chaos_plan(seed));
      run = run_once(analysis, b, workers, seed);
    }
    if (run.code == ErrorCode::kOk) {
      ++clean;
      expect_bitwise_identical(run, baseline, label);
    } else {
      ++failed;
      EXPECT_TRUE(structured(run.code))
          << label << ": uncategorized code " << error_code_name(run.code);
    }
    // A failed schedule must never poison the process: replay the seed
    // (determinism) on the first failure only, to bound the cost.
    if (run.code != ErrorCode::kOk && failed == 1) {
      fault::ScopedPlan scoped(chaos_plan(seed));
      EXPECT_EQ(run_once(analysis, b, workers, seed).code, run.code)
          << label << ": schedule did not replay";
    }
  }
  // The plan's periods are tuned so the sweep exercises both outcomes;
  // all-clean or all-failed means the harness stopped probing anything.
  EXPECT_GT(failed, 0) << "no schedule ever injected";
  EXPECT_GT(clean + failed, 0);
  // Fault-free execution after the whole sweep is still pristine.
  const RunResult after = run_once(analysis, b, workers);
  ASSERT_EQ(after.code, ErrorCode::kOk);
  expect_bitwise_identical(after, baseline, "post-sweep rerun");
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    cases.push_back({ProblemId::kXenon2, false, workers});    // UNS -> LU
    cases.push_back({ProblemId::kMsdoor, true, workers});     // SYM -> LDLT
    cases.push_back({ProblemId::kTwotone, false, workers});   // UNS -> LU
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ChaosHarness, ::testing::ValuesIn(chaos_cases()),
    [](const auto& info) {
      return problem_name(info.param.id) +
             std::string(info.param.ldlt ? "_LDLT" : "_LU") + "_w" +
             std::to_string(info.param.workers);
    });

// The OOC simulator under disk chaos: every seeded schedule either
// completes with exactly the baseline's I/O volumes (transients absorbed
// by the bounded retry) or fails as a clean io_error.
TEST(ChaosHarness, OocDiskFaultSweep) {
  const Problem p = make_problem(ProblemId::kUltrasound3, 0.25);
  ExperimentSetup setup;
  setup.nprocs = 8;
  setup.ordering = OrderingKind::kNestedDissection;
  const PreparedExperiment prepared = prepare_experiment(p.matrix, setup);
  const ExperimentOutcome incore = run_prepared(prepared, setup);
  ExperimentSetup ooc = setup;
  ooc.ooc.enabled = true;
  ooc.ooc.budget = incore.max_stack_peak / 2;
  const ExperimentOutcome baseline = run_prepared(prepared, ooc);
  ASSERT_GT(baseline.parallel.ooc_factor_write_entries, 0);

  int clean = 0, io_failed = 0;
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    fault::ScopedPlan scoped({.seed = seed,
                              .period = 0,
                              .overrides = {{"ooc.write", 6},
                                            {"ooc.read", 6}}});
    try {
      const ExperimentOutcome out = run_prepared(prepared, ooc);
      ++clean;
      EXPECT_EQ(out.parallel.ooc_factor_write_entries,
                baseline.parallel.ooc_factor_write_entries)
          << "seed " << seed;
      EXPECT_EQ(out.parallel.ooc_spill_entries,
                baseline.parallel.ooc_spill_entries)
          << "seed " << seed;
      EXPECT_EQ(out.parallel.ooc_reload_entries,
                baseline.parallel.ooc_reload_entries)
          << "seed " << seed;
    } catch (const SolverError& e) {
      ++io_failed;
      EXPECT_EQ(e.code(), ErrorCode::kIoError) << "seed " << seed;
    }
  }
  // Period 6 with 3 bounded attempts: most ops retry through, a few
  // exhaust — the sweep must see both outcomes.
  EXPECT_GT(clean, 0) << "every disk schedule failed";
  EXPECT_GT(io_failed, 0) << "no disk schedule ever exhausted its retries";
}

#if MEMFRONT_OOC_REAL

constexpr std::uint64_t kRealOocSeedsPerCase = 24;

/// The *real* spill path under disk chaos: factorize + solve with a
/// binding budget while every store fault site fires on seeded
/// schedules. The hardened-execution contract holds end to end: either
/// the transients are absorbed and the factors AND solution are
/// bit-identical to the fault-free budgeted baseline, or the run fails
/// with a structured kIoError/kWorkerFailure — never a wrong answer.
class RealOocDiskChaos : public ::testing::TestWithParam<unsigned> {};

TEST_P(RealOocDiskChaos, EverySpillScheduleIsBitIdenticalOrStructured) {
  const unsigned workers = GetParam();
  const Problem p = make_problem(ProblemId::kUltrasound3, 0.25);
  AnalysisOptions aopt;
  aopt.ordering = OrderingKind::kNestedDissection;
  const Analysis analysis = analyze(p.matrix, aopt);
  std::vector<double> b(static_cast<std::size_t>(p.matrix.nrows()), 1.0);

  const Factorization incore = numeric_factorize(analysis);
  ParallelNumericOptions popt;
  popt.nthreads = workers;
  popt.nprocs = 8;
  popt.ooc.enabled = true;
  popt.ooc.budget_doubles = incore.stats.arena_peak_doubles * 8 / 10;

  auto run_ooc = [&](std::uint64_t sched_seed = 0) -> RunResult {
    RunResult r;
    try {
      ParallelNumericOptions ropt = popt;
      ropt.sched.steal = (sched_seed % 2 == 0);
      ropt.sched.policy = (sched_seed % 4 < 2) ? RealPolicy::kWorkload
                                               : RealPolicy::kMemory;
      r.fact = parallel_numeric_factorize(analysis, ropt);
      SolveOptions sopt;
      sopt.nthreads = workers;
      sopt.nprocs = 8;
      r.x = solve_factorized_multi(analysis, r.fact, b, 1, sopt);
    } catch (const SolverError& e) {
      r.code = e.code();
    } catch (const InvalidInputError& e) {
      r.code = e.code();
    }
    return r;
  };

  const RunResult baseline = run_ooc();
  ASSERT_EQ(baseline.code, ErrorCode::kOk) << "fault-free budgeted baseline";
  ASSERT_GT(baseline.fact.stats.ooc.spill_events, 0)
      << "budget not binding: the sweep would not touch the spill path";
  expect_bitwise_identical(baseline, run_once(analysis, b, workers),
                           "budgeted baseline vs in-core");

  int clean = 0, failed = 0;
  for (std::uint64_t seed = 0; seed < kRealOocSeedsPerCase; ++seed) {
    const std::string label =
        "real-ooc seed " + std::to_string(seed) + " workers " +
        std::to_string(workers);
    RunResult run;
    {
      fault::ScopedPlan scoped({.seed = seed,
                                .period = 0,
                                .overrides = {{"store.write", 9},
                                              {"store.read", 9},
                                              {"store.torn_read", 9},
                                              {"store.short_write", 11},
                                              {"store.enospc", 301},
                                              {"store.fsync", 13}}});
      run = run_ooc(seed);
    }
    if (run.code == ErrorCode::kOk) {
      ++clean;
      expect_bitwise_identical(run, baseline, label);
    } else {
      ++failed;
      // Disk chaos surfaces as kIoError from the failing worker; other
      // workers then unwind with kWorkerFailure — whichever the joiner
      // rethrows first, the code stays inside the taxonomy.
      EXPECT_TRUE(run.code == ErrorCode::kIoError ||
                  run.code == ErrorCode::kWorkerFailure)
          << label << ": uncategorized code " << error_code_name(run.code);
    }
  }
  EXPECT_GT(clean, 0) << "every disk schedule failed";
  EXPECT_GT(failed, 0) << "no disk schedule ever escaped the retries";

  // Fault-free execution after the sweep is still pristine (no leaked
  // spill state, no poisoned store).
  const RunResult after = run_ooc();
  ASSERT_EQ(after.code, ErrorCode::kOk);
  expect_bitwise_identical(after, baseline, "post-sweep rerun");
}

INSTANTIATE_TEST_SUITE_P(RealSpillPath, RealOocDiskChaos,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return std::string("w") +
                                  std::to_string(info.param);
                         });

#endif  // MEMFRONT_OOC_REAL

// ctest runs every gtest case in its own process, so the acceptance
// floor (>= 200 seeded schedules across the binary) is checked
// statically from the sweep dimensions, not a runtime tally.
TEST(ChaosHarness, SweepDimensionsMeetTheScheduleFloor) {
  constexpr std::uint64_t kOocSeeds = 48;
  EXPECT_GE(kSeedsPerCase * chaos_cases().size() + kOocSeeds, 200u)
      << "the chaos sweep shrank below the acceptance floor";
}

}  // namespace
}  // namespace memfront

#endif  // MEMFRONT_FAULTS
