// Randomized end-to-end properties over matrices *outside* the Table-1
// generator families: arbitrary sparse diagonally-dominant patterns,
// disconnected graphs, dense rows — through analysis, numeric solve, and
// the parallel simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "memfront/core/experiment.hpp"
#include "memfront/solver/multifrontal.hpp"
#include "memfront/sparse/coo.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

/// Random diagonally dominant matrix; optionally symmetric values,
/// optionally disconnected (two blocks), optionally with a dense row.
CscMatrix random_matrix(index_t n, double density, bool symmetric,
                        bool disconnected, bool dense_row,
                        std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  const auto edges =
      static_cast<count_t>(density * static_cast<double>(n) * n / 2);
  const index_t half = n / 2;
  for (count_t e = 0; e < edges; ++e) {
    index_t u, v;
    if (disconnected && rng.below(2) == 0) {
      u = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(half)));
      v = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(half)));
    } else if (disconnected) {
      u = half + static_cast<index_t>(
                     rng.below(static_cast<std::uint64_t>(n - half)));
      v = half + static_cast<index_t>(
                     rng.below(static_cast<std::uint64_t>(n - half)));
    } else {
      u = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      v = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    }
    if (u == v) continue;
    const double w = rng.real(-1.0, 1.0);
    if (symmetric) {
      coo.add_symmetric(u, v, w);
    } else {
      coo.add(u, v, w);
      if (rng.below(2) == 0) coo.add(v, u, rng.real(-1.0, 1.0));
    }
  }
  if (dense_row) {
    for (index_t j = 1; j < n; j += 2) {
      const double w = rng.real(-0.1, 0.1);
      if (symmetric)
        coo.add_symmetric(0, j, w);
      else
        coo.add(0, j, w);
    }
  }
  // Dominant diagonal.
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  const CscMatrix tmp = coo.to_csc();
  for (index_t j = 0; j < n; ++j) {
    auto rows = tmp.column(j);
    auto vals = tmp.column_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k)
      if (rows[k] != j) rowsum[rows[k]] += std::abs(vals[k]);
  }
  for (index_t i = 0; i < n; ++i)
    coo.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0);
  return coo.to_csc();
}

struct PipelineCase {
  std::uint64_t seed;
  bool symmetric;
  bool disconnected;
  bool dense_row;
  OrderingKind ordering;
};

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, SolveAndSimulate) {
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 4; ++trial) {
    const PipelineCase c{
        .seed = meta.next(),
        .symmetric = meta.below(2) == 0,
        .disconnected = meta.below(3) == 0,
        .dense_row = meta.below(3) == 0,
        .ordering = std::vector<OrderingKind>{
            OrderingKind::kAmd, OrderingKind::kAmf,
            OrderingKind::kNestedDissection, OrderingKind::kPord,
            OrderingKind::kRcm}[meta.below(5)],
    };
    const index_t n = 60 + static_cast<index_t>(meta.below(140));
    const CscMatrix a =
        random_matrix(n, 0.04, c.symmetric, c.disconnected, c.dense_row,
                      c.seed);
    SCOPED_TRACE(::testing::Message()
                 << "n=" << n << " sym=" << c.symmetric << " disc="
                 << c.disconnected << " dense=" << c.dense_row << " ord="
                 << ordering_name(c.ordering) << " seed=" << c.seed);

    // Numeric path: residual + stack parity.
    AnalysisOptions opt;
    opt.ordering = c.ordering;
    opt.symmetric = c.symmetric;
    MultifrontalSolver solver(a, opt);
    solver.factorize();
    EXPECT_EQ(solver.factorization().stats.measured_stack_peak,
              solver.analysis().memory.peak);
    std::vector<double> xtrue(static_cast<std::size_t>(n));
    Rng vr(c.seed + 1);
    for (double& v : xtrue) v = vr.real(-1, 1);
    std::vector<double> b(static_cast<std::size_t>(n));
    a.multiply(xtrue, b);
    const std::vector<double> x = solver.solve(b);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      err = std::max(err, std::abs(x[i] - xtrue[i]));
    EXPECT_LT(err, 1e-7);

    // Parallel path: every strategy completes and conserves factors.
    for (SlaveStrategy ss : {SlaveStrategy::kWorkload,
                             SlaveStrategy::kMemoryImproved}) {
      ExperimentSetup setup;
      setup.nprocs = 4;
      setup.ordering = c.ordering;
      setup.symmetric = c.symmetric;
      setup.slave_strategy = ss;
      setup.task_strategy = TaskStrategy::kMemoryAware;
      const PreparedExperiment prepared = prepare_experiment(a, setup);
      const ExperimentOutcome o = run_prepared(prepared, setup);
      count_t factors = 0;
      for (const auto& pr : o.parallel.procs) factors += pr.factor_entries;
      EXPECT_EQ(factors, prepared.analysis->tree.total_factor_entries());
      EXPECT_GE(o.max_stack_peak, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(1, 9));

TEST(PipelineProperty, SingleProcessorParityOnRandomMatrices) {
  Rng meta(424242);
  for (int trial = 0; trial < 6; ++trial) {
    const CscMatrix a = random_matrix(
        80 + static_cast<index_t>(meta.below(80)), 0.05,
        meta.below(2) == 0, false, false, meta.next());
    ExperimentSetup setup;
    setup.nprocs = 1;
    setup.ordering = OrderingKind::kAmd;
    const ExperimentOutcome o = run_experiment(a, setup);
    EXPECT_EQ(o.max_stack_peak, o.sequential_peak) << "trial " << trial;
  }
}

TEST(PipelineProperty, DiagonalMatrixDegenerates) {
  // Pure diagonal: every node is a 1x1 leaf root.
  CooMatrix coo(30, 30);
  for (index_t i = 0; i < 30; ++i) coo.add(i, i, 2.0);
  const CscMatrix a = coo.to_csc();
  MultifrontalSolver solver(a, {});
  solver.factorize();
  const std::vector<double> b(30, 4.0);
  const std::vector<double> x = solver.solve(b);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_EQ(solver.analysis().memory.peak, 1);  // one 1x1 front at a time
}

TEST(PipelineProperty, ArrowheadMatrixDenseRoot) {
  // Arrowhead: AMD defers the hub; the root front contains it.
  const index_t n = 120;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 0.0);
  for (index_t i = 1; i < n; ++i) coo.add_symmetric(0, i, -1.0);
  // Dominate diagonal.
  CooMatrix coo2(n, n);
  for (index_t i = 0; i < n; ++i)
    coo2.add(i, i, i == 0 ? static_cast<double>(n) : 2.0);
  for (index_t i = 1; i < n; ++i) coo2.add_symmetric(0, i, -1.0);
  const CscMatrix a = coo2.to_csc();
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kAmd;
  opt.symmetric = true;
  MultifrontalSolver solver(a, opt);
  solver.factorize();
  std::vector<double> xtrue(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.multiply(xtrue, b);
  const std::vector<double> x = solver.solve(b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-10);
}

}  // namespace
}  // namespace memfront
