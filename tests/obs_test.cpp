// The observability layer: span tracer ring semantics, thread-track
// separation, metrics registry concurrency, the Chrome trace-event
// export, the CSV compatibility wrappers, and the disabled-mode
// zero-allocation guarantee.
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "memfront/obs/chrome_trace.hpp"
#include "memfront/obs/metrics.hpp"
#include "memfront/obs/span_tracer.hpp"
#include "memfront/sim/trace.hpp"
#include "memfront/support/parallel_for.hpp"

// ---- allocation counting for the disabled-mode test ------------------------
//
// Every global allocation in this test binary bumps the counter; the
// disabled-mode test asserts the macros perform none. GCC pairs the
// replacement operators with the libc malloc/free it can see through
// them and warns about the "mismatch"; the pairing is exact, so the
// warning is suppressed for this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace memfront;
using namespace memfront::obs;

/// Minimal structural JSON validator: brace/bracket balance outside
/// strings, escape-aware. Enough to catch broken emitters without a
/// JSON library.
bool balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"')
      in_string = true;
    else if (c == '{' || c == '[')
      ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// Every tracer test starts from a clean global tracer and leaves it
/// disabled with the default ring capacity.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::global().set_ring_capacity(1 << 16);
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::global().set_ring_capacity(1 << 16);
    Tracer::global().clear();
  }
};

#if MEMFRONT_OBS

TEST_F(TracerTest, SpanNestingRecordsContainedIntervals) {
  Tracer::set_enabled(true);
  {
    MEMFRONT_SPAN("outer", 1);
    { MEMFRONT_SPAN("inner", 2); }
  }
  Tracer::set_enabled(false);

  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].events.size(), 2u);
  // Spans are recorded at scope exit: the inner one lands first.
  const TraceEvent& inner = tracks[0].events[0];
  const TraceEvent& outer = tracks[0].events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.arg, 2);
  EXPECT_EQ(outer.arg, 1);
  EXPECT_EQ(inner.kind, TraceEventKind::kSpan);
  // Containment: the inner interval lies inside the outer one.
  EXPECT_LE(outer.t0_ns, inner.t0_ns);
  EXPECT_LE(inner.t0_ns, inner.t1_ns);
  EXPECT_LE(inner.t1_ns, outer.t1_ns);
}

TEST_F(TracerTest, DisabledMacrosAllocateNothing) {
  Tracer::set_enabled(false);
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    MEMFRONT_SPAN("disabled_span", i);
    MEMFRONT_INSTANT("disabled_instant", i);
    MEMFRONT_COUNTER("disabled_counter", i);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
  // And nothing was recorded either.
  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  std::size_t events = 0;
  for (const Tracer::TrackSnapshot& t : tracks) events += t.events.size();
  EXPECT_EQ(events, 0u);
}

#endif  // MEMFRONT_OBS

TEST_F(TracerTest, RingWraparoundKeepsNewestEvents) {
  Tracer::global().set_ring_capacity(8);
  Tracer::set_enabled(true);
  for (int i = 0; i < 20; ++i) Tracer::global().record_instant("tick", i);
  Tracer::set_enabled(false);

  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  const Tracer::TrackSnapshot& track = tracks[0];
  EXPECT_EQ(track.dropped, 12u);
  ASSERT_EQ(track.events.size(), 8u);
  // Oldest-first: ids 12..19 survive.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(track.events[i].arg, 12 + i);
}

TEST_F(TracerTest, ThreadsGetSeparateNamedTracks) {
  constexpr int kThreads = 4;
  Tracer::set_enabled(true);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([i] {
      Tracer::global().set_thread_name("tracked-" + std::to_string(i));
      Tracer::global().record_instant("mark", i);
    });
  for (std::thread& t : threads) t.join();
  Tracer::set_enabled(false);

  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  ASSERT_EQ(tracks.size(), static_cast<std::size_t>(kThreads));
  std::set<std::uint32_t> tids;
  std::set<std::string> names;
  for (const Tracer::TrackSnapshot& track : tracks) {
    tids.insert(track.tid);
    names.insert(track.name);
    // Each thread recorded exactly one event, and its name matches the
    // id it stamped on the event.
    ASSERT_EQ(track.events.size(), 1u);
    EXPECT_EQ(track.name,
              "tracked-" + std::to_string(track.events[0].arg));
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TracerTest, ParallelForWorkersRecordToTheirOwnTracks) {
  // The sweep harness's thread pool: every index is recorded exactly
  // once, whichever worker's ring it lands in.
  constexpr std::size_t kItems = 64;
  Tracer::set_enabled(true);
  parallel_for(kItems, [](std::size_t i) {
    Tracer::global().record_instant("item", static_cast<std::int64_t>(i));
  }, 4);
  Tracer::set_enabled(false);

  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  EXPECT_GE(tracks.size(), 1u);
  std::set<std::int64_t> seen;
  for (const Tracer::TrackSnapshot& track : tracks) {
    EXPECT_EQ(track.dropped, 0u);
    for (const TraceEvent& ev : track.events) {
      EXPECT_TRUE(seen.insert(ev.arg).second)
          << "item " << ev.arg << " recorded twice";
    }
  }
  EXPECT_EQ(seen.size(), kItems);
}

TEST_F(TracerTest, ClearRestartsEpochAndDropsTracks) {
  Tracer::set_enabled(true);
  Tracer::global().record_instant("before_clear", 1);
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().snapshot().empty());
  // A thread that recorded before re-registers on its next event.
  Tracer::global().record_instant("after_clear", 2);
  Tracer::set_enabled(false);
  const std::vector<Tracer::TrackSnapshot> tracks = Tracer::global().snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].events.size(), 1u);
  EXPECT_STREQ(tracks[0].events[0].name, "after_clear");
}

// ---- metrics ---------------------------------------------------------------

TEST(MetricsTest, CountersAndGaugesSurviveConcurrentHammering) {
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  Counter& counter =
      MetricsRegistry::global().counter("obs_test.concurrent_counter");
  Gauge& gauge = MetricsRegistry::global().gauge("obs_test.concurrent_gauge");
  Histogram& hist =
      MetricsRegistry::global().histogram("obs_test.concurrent_hist");
  counter.reset();
  gauge.reset();
  hist.reset();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &counter, &gauge, &hist] {
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        gauge.max_of(t * kIters + i);
        hist.observe(1);
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(), kThreads * kIters);
  EXPECT_EQ(gauge.value(), kThreads * kIters - 1);  // the largest max_of
  EXPECT_EQ(hist.count(), kThreads * kIters);
  EXPECT_EQ(hist.sum(), kThreads * kIters);
  EXPECT_EQ(hist.bucket(1), kThreads * kIters);  // all observations were 1
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  Histogram& hist = MetricsRegistry::global().histogram("obs_test.buckets");
  hist.reset();
  hist.observe(0);   // bucket 0: v <= 0
  hist.observe(-5);  // bucket 0 too
  hist.observe(1);   // bucket 1: [1, 2)
  hist.observe(2);   // bucket 2: [2, 4)
  hist.observe(3);   // bucket 2
  hist.observe(900); // bucket 10: [512, 1024)
  EXPECT_EQ(hist.count(), 6);
  EXPECT_EQ(hist.bucket(0), 2);
  EXPECT_EQ(hist.bucket(1), 1);
  EXPECT_EQ(hist.bucket(2), 2);
  EXPECT_EQ(hist.bucket(10), 1);
  EXPECT_EQ(hist.min(), -5);
  EXPECT_EQ(hist.max(), 900);
  EXPECT_EQ(hist.sum(), 901);
}

TEST(MetricsTest, RegistryWritesSortedValidJson) {
  MetricsRegistry::global().counter("obs_test.json_a").add(3);
  MetricsRegistry::global().counter("obs_test.json_b").add(7);
  MetricsRegistry::global().gauge("obs_test.json_gauge").set(42);
  std::ostringstream os;
  MetricsRegistry::global().write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_a\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_b\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\": 42"), std::string::npos);
  // Sorted keys: a before b.
  EXPECT_LT(json.find("obs_test.json_a"), json.find("obs_test.json_b"));
}

TEST(MetricsTest, FindDoesNotMaterialize) {
  EXPECT_EQ(MetricsRegistry::global().find_counter("obs_test.never_created"),
            nullptr);
  MetricsRegistry::global().counter("obs_test.created_once").add(5);
  const Counter* found =
      MetricsRegistry::global().find_counter("obs_test.created_once");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 5);
}

TEST(MetricsTest, UnitConversions) {
  EXPECT_EQ(doubles_to_bytes(10), 80);
  EXPECT_EQ(entries_to_bytes(1024), 8192);
  // getrusage should report something on Linux; never negative.
  EXPECT_GE(peak_rss_bytes(), 0);
}

// ---- Chrome trace export ---------------------------------------------------

Tracer::TrackSnapshot make_track(std::uint32_t tid, const std::string& name) {
  Tracer::TrackSnapshot track;
  track.tid = tid;
  track.name = name;
  track.events.push_back({1000, 3000, "work", 7, TraceEventKind::kSpan});
  track.events.push_back({1500, 1500, "blip", -1, TraceEventKind::kInstant});
  track.events.push_back({2000, 2000, "depth", 42, TraceEventKind::kCounter});
  return track;
}

TEST(ChromeTraceTest, ExportsTracksAsValidTraceEvents) {
  ChromeTraceWriter writer;
  writer.add_tracer_snapshot({make_track(0, "worker-0"), make_track(1, "")},
                             "unit test");
  std::ostringstream os;
  writer.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Process and thread metadata; the unnamed track gets a fallback name.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"unit test\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"thread-1\""), std::string::npos);
  // The span: 1000 ns -> ts 1.000 us, dur 2.000 us, id arg attached.
  EXPECT_NE(json.find("\"name\": \"work\", \"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1.000, \"dur\": 2.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"id\": 7}"), std::string::npos);
  // Instant without id carries no args clause.
  EXPECT_NE(json.find("\"name\": \"blip\", \"ph\": \"i\""), std::string::npos);
  // Counter value.
  EXPECT_NE(json.find("\"args\": {\"value\": 42}"), std::string::npos);
  EXPECT_EQ(writer.dropped(), 0u);
}

TEST(ChromeTraceTest, SimTimelineSharesTheMicrosecondAxis) {
  Trace trace;
  trace.record(0.5, 2, 128);
  trace.record_io(0.25, 0.75, 1, 64, TraceIo::kSpill);
  trace.annotate(1.0, 0, "root finished");
  ChromeTraceWriter writer;
  writer.add_sim_timeline("sim", trace);
  std::ostringstream os;
  writer.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  // 0.5 simulated seconds -> 500000 us on the shared axis.
  EXPECT_NE(json.find("\"name\": \"stack.p2\", \"ph\": \"C\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\": 500000.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"entries\": 128}"), std::string::npos);
  // The spill is a slice from 250000 us lasting 500000 us.
  EXPECT_NE(json.find("\"name\": \"spill\", \"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 250000.000, \"dur\": 500000.000"),
            std::string::npos);
  // The annotation becomes an instant, proc tracks get names.
  EXPECT_NE(json.find("\"root finished\""), std::string::npos);
  EXPECT_NE(json.find("\"proc-0\""), std::string::npos);
}

TEST(ChromeTraceTest, CountsDroppedEventsAcrossTracks) {
  Tracer::TrackSnapshot a = make_track(0, "a");
  a.dropped = 5;
  Tracer::TrackSnapshot b = make_track(1, "b");
  b.dropped = 7;
  ChromeTraceWriter writer;
  writer.add_tracer_snapshot({a, b}, "dropped");
  EXPECT_EQ(writer.dropped(), 12u);
}

// ---- CSV compatibility wrappers --------------------------------------------

TEST(CsvWrapperTest, StackCsvIsByteIdenticalToLegacyFormat) {
  Trace trace;
  trace.record(0.5, 1, 100);
  trace.record(1.25, 3, 250);
  std::ostringstream via_trace, via_obs;
  trace.write_csv(via_trace);
  obs::write_stack_csv(via_obs, trace);
  EXPECT_EQ(via_trace.str(), via_obs.str());
  EXPECT_EQ(via_trace.str(),
            "time,proc,stack_entries\n"
            "0.5,1,100\n"
            "1.25,3,250\n");
}

TEST(CsvWrapperTest, IoCsvIsByteIdenticalToLegacyFormat) {
  Trace trace;
  trace.record_io(0.5, 0.75, 2, 64, TraceIo::kFactorWrite);
  trace.record_io(1.0, 1.5, 0, 32, TraceIo::kReload);
  std::ostringstream via_trace, via_obs;
  trace.write_io_csv(via_trace);
  obs::write_io_csv(via_obs, trace);
  EXPECT_EQ(via_trace.str(), via_obs.str());
  EXPECT_EQ(via_trace.str(),
            "time,finish,proc,entries,kind\n"
            "0.5,0.75,2,64,factor-write\n"
            "1,1.5,0,32,reload\n");
}

}  // namespace
