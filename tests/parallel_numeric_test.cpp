// Numeric correctness harness of the blocked/parallel factorization
// layer, per the acceptance criteria:
//   (a) pivot sequences (and every stored factor value) bit-identical to
//       the pre-blocking scalar kernels,
//   (b) backward error ||Ax-b|| / (||A|| ||x||) below 1e-10 across all
//       Table-1 problems x LU/LDLT x serial/parallel,
//   (c) the parallel factorization is deterministic given a fixed subtree
//       assignment (and in fact bit-identical to the serial driver),
// plus the arena-peak guarantees: the serial physical peak equals the
// predictor, and no parallel worker's private arena ever exceeds the
// predicted sequential peak.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "memfront/frontal/arena.hpp"
#include "memfront/solver/parallel_numeric.hpp"
#include "memfront/solver/solve.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

constexpr double kScale = 0.18;
constexpr double kBackwardErrorBound = 1e-10;

std::vector<double> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.real(-1.0, 1.0);
  return x;
}

/// Infinity norm of A (max absolute row sum).
double matrix_norm_inf(const CscMatrix& a) {
  std::vector<double> row_sum(static_cast<std::size_t>(a.nrows()), 0.0);
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.column(j);
    auto vals = a.column_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k)
      row_sum[static_cast<std::size_t>(rows[k])] += std::abs(vals[k]);
  }
  double norm = 0.0;
  for (double v : row_sum) norm = std::max(norm, v);
  return norm;
}

double backward_error(const CscMatrix& a, const Analysis& analysis,
                      const Factorization& fact) {
  const std::vector<double> xtrue = random_vector(a.nrows(), 7);
  std::vector<double> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(xtrue, b);
  const std::vector<double> x = solve_factorized(analysis, fact, b);
  double xnorm = 0.0;
  for (double v : x) xnorm = std::max(xnorm, std::abs(v));
  return a.residual_inf(x, b) / (matrix_norm_inf(a) * xnorm);
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_factorizations_bitwise_equal(const Factorization& a,
                                         const Factorization& b,
                                         const std::string& label) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << label;
  EXPECT_EQ(a.row_of, b.row_of) << label << ": pivot sequences differ";
  EXPECT_EQ(a.stats.perturbations, b.stats.perturbations) << label;
  EXPECT_EQ(a.stats.factor_entries, b.stats.factor_entries) << label;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(a.nodes[i].panel, b.nodes[i].panel))
        << label << ": panel of node " << i;
    ASSERT_TRUE(bitwise_equal(a.nodes[i].u12, b.nodes[i].u12))
        << label << ": u12 of node " << i;
  }
}

struct Case {
  ProblemId id;
  bool ldlt;  // symmetric (LDLT) or unsymmetric (LU) factorization
};

std::vector<Case> harness_cases() {
  std::vector<Case> cases;
  for (ProblemId id : all_problem_ids()) {
    const Problem p = make_problem(id, 0.05);  // cheap probe for symmetry
    cases.push_back({id, false});              // LU runs on everything
    if (p.symmetric) cases.push_back({id, true});
  }
  return cases;
}

class NumericHarness : public ::testing::TestWithParam<Case> {};

TEST_P(NumericHarness, SerialParallelReferenceAgreeAndResidualsTiny) {
  const auto [pid, ldlt] = GetParam();
  const Problem p = make_problem(pid, kScale);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kAmd;
  opt.symmetric = ldlt;
  const Analysis analysis = analyze(p.matrix, opt);

  // (a) blocked kernels == pre-blocking scalar kernels, bit for bit.
  const Factorization serial = numeric_factorize(analysis);
  NumericOptions reference_options;
  reference_options.kernel = FrontalKernel::kReference;
  const Factorization reference =
      numeric_factorize(analysis, reference_options);
  expect_factorizations_bitwise_equal(serial, reference,
                                      "blocked vs reference");

  // (b) backward error, serial.
  EXPECT_LT(backward_error(p.matrix, analysis, serial), kBackwardErrorBound)
      << problem_name(pid) << (ldlt ? " LDLT" : " LU") << " serial";

  // (c) parallel: bit-identical to serial and to a re-run with the same
  // subtree assignment.
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  popt.nprocs = 4;  // fixed assignment regardless of the host
  ParallelNumericStats pstats;
  const Factorization parallel =
      parallel_numeric_factorize(analysis, popt, &pstats);
  expect_factorizations_bitwise_equal(serial, parallel,
                                      "serial vs parallel");
  const Factorization parallel2 = parallel_numeric_factorize(analysis, popt);
  expect_factorizations_bitwise_equal(parallel, parallel2,
                                      "parallel determinism");
  EXPECT_LT(backward_error(p.matrix, analysis, parallel),
            kBackwardErrorBound)
      << problem_name(pid) << (ldlt ? " LDLT" : " LU") << " parallel";

  // Arena peaks: serial == prediction; no worker exceeds the predicted
  // sequential peak.
  const count_t predicted =
      predict_arena_peak(analysis.tree, analysis.traversal);
  EXPECT_EQ(serial.stats.measured_stack_peak, analysis.memory.peak);
  EXPECT_EQ(serial.stats.arena_peak_doubles, predicted);
  EXPECT_EQ(serial.stats.arena_slabs, 1);
  EXPECT_LE(pstats.max_arena_peak_doubles, predicted);
  // Stealing-aware bound (solver/scheduler): any schedule — static,
  // stolen, any policy — keeps each worker inside the largest single
  // subtree window / upper front window, which in turn never exceeds
  // the serial predicted peak.
  EXPECT_LE(pstats.max_arena_peak_doubles, pstats.steal_arena_bound_doubles);
  EXPECT_LE(pstats.steal_arena_bound_doubles, predicted);
  // Some problems legitimately map zero subtrees at small scales (the
  // memory refinement moves everything to the upper part); the driver
  // must cope, so no positivity assertion here.
  EXPECT_EQ(pstats.workers, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, NumericHarness, ::testing::ValuesIn(harness_cases()),
    [](const auto& info) {
      return problem_name(info.param.id) +
             std::string(info.param.ldlt ? "_LDLT" : "_LU");
    });

TEST(ParallelNumeric, SubtreePhaseActuallyRuns) {
  // On a regular 3D problem the Geist-Ng cut must produce whole-subtree
  // tasks (type-1 parallelism), not just upper-part node tasks.
  const Problem p = make_problem(ProblemId::kXenon2, kScale);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kNestedDissection;
  const Analysis analysis = analyze(p.matrix, opt);
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  ParallelNumericStats stats;
  (void)parallel_numeric_factorize(analysis, popt, &stats);
  EXPECT_GT(stats.num_subtrees, 0);
  EXPECT_GT(stats.num_upper_nodes, 0);
  EXPECT_GT(stats.max_arena_peak_doubles, 0);
  EXPECT_GE(stats.total_arena_peak_doubles, stats.max_arena_peak_doubles);
}

TEST(ParallelNumeric, SingleWorkerMatchesSerial) {
  const Problem p = make_problem(ProblemId::kTwotone, kScale);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kNestedDissection;
  const Analysis analysis = analyze(p.matrix, opt);
  ParallelNumericOptions popt;
  popt.nthreads = 1;
  const Factorization serial = numeric_factorize(analysis);
  const Factorization parallel = parallel_numeric_factorize(analysis, popt);
  expect_factorizations_bitwise_equal(serial, parallel, "one worker");
}

TEST(ParallelNumeric, SubtreeAssignmentIndependentOfWorkerCount) {
  // The *result* never depends on how many workers execute a fixed
  // mapping (nprocs pinned): type-1 subtree tasks and dependency-counted
  // upper tasks write disjoint slots.
  const Problem p = make_problem(ProblemId::kXenon2, kScale);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kAmd;
  const Analysis analysis = analyze(p.matrix, opt);
  ParallelNumericOptions base;
  base.nprocs = 8;
  Factorization first;
  for (unsigned nthreads : {1u, 2u, 4u, 8u}) {
    ParallelNumericOptions popt = base;
    popt.nthreads = nthreads;
    Factorization fact = parallel_numeric_factorize(analysis, popt);
    if (nthreads == 1u)
      first = std::move(fact);
    else
      expect_factorizations_bitwise_equal(first, fact,
                                          "workers=" +
                                              std::to_string(nthreads));
  }
}

TEST(ParallelNumeric, SplitTreeParallelSolves) {
  // Chain-split trees flow through the parallel driver too.
  const Problem p = make_problem(ProblemId::kTwotone, 0.16);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kAmf;
  opt.split_master_threshold = 5'000;
  const Analysis analysis = analyze(p.matrix, opt);
  ASSERT_GT(analysis.num_split_nodes, 0);
  ParallelNumericOptions popt;
  popt.nthreads = 4;
  const Factorization parallel = parallel_numeric_factorize(analysis, popt);
  expect_factorizations_bitwise_equal(numeric_factorize(analysis), parallel,
                                      "split tree");
  EXPECT_LT(backward_error(p.matrix, analysis, parallel), 1e-8);
}

TEST(ParallelNumeric, ReferenceKernelsAlsoAvailable) {
  const Problem p = make_problem(ProblemId::kMsdoor, 0.14);
  AnalysisOptions opt;
  opt.ordering = OrderingKind::kAmd;
  opt.symmetric = true;
  const Analysis analysis = analyze(p.matrix, opt);
  ParallelNumericOptions popt;
  popt.nthreads = 2;
  popt.kernel = FrontalKernel::kReference;
  NumericOptions sopt;
  sopt.kernel = FrontalKernel::kReference;
  expect_factorizations_bitwise_equal(
      numeric_factorize(analysis, sopt),
      parallel_numeric_factorize(analysis, popt), "reference kernels");
}

}  // namespace
}  // namespace memfront
