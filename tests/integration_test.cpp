// End-to-end tests exercising the same pipelines as the paper's tables.
#include <gtest/gtest.h>

#include "memfront/core/experiment.hpp"
#include "memfront/solver/multifrontal.hpp"
#include "memfront/sparse/generators.hpp"
#include "memfront/sparse/problems.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

TEST(Integration, Figure1EndToEnd) {
  // The 6x6 example: analyse, factor, solve, and simulate on 2 procs.
  const CscMatrix a = figure1_matrix();
  AnalysisOptions aopt;
  aopt.symmetric = true;
  aopt.ordering = OrderingKind::kNatural;
  MultifrontalSolver solver(a, aopt);
  solver.factorize();
  const std::vector<double> b(6, 1.0);
  const std::vector<double> x = solver.solve(b);
  EXPECT_LT(a.residual_inf(x, b), 1e-10);

  ExperimentSetup setup;
  setup.nprocs = 2;
  setup.symmetric = true;
  setup.ordering = OrderingKind::kNatural;
  const ExperimentOutcome o = run_experiment(a, setup);
  EXPECT_GT(o.max_stack_peak, 0);
}

TEST(Integration, Table2CellShape) {
  // One cell of Table 2: same matrix/ordering, workload vs memory
  // strategy, 32 processors. Both must complete; the comparison is the
  // paper's headline number.
  const Problem p = make_problem(ProblemId::kXenon2, 0.4);
  ExperimentSetup base;
  base.nprocs = 32;
  base.symmetric = p.symmetric;
  base.ordering = OrderingKind::kAmd;
  ExperimentSetup mem = base;
  mem.slave_strategy = SlaveStrategy::kMemoryImproved;
  mem.task_strategy = TaskStrategy::kMemoryAware;
  const StrategyComparison cmp = compare_strategies(p.matrix, base, mem);
  EXPECT_GT(cmp.baseline_peak, 0);
  EXPECT_GT(cmp.memory_peak, 0);
  EXPECT_GT(cmp.percent_decrease, -100.0);
  EXPECT_LT(cmp.percent_decrease, 100.0);
}

TEST(Integration, MemoryStrategyHelpsOnAverage) {
  // Across a small grid of problems/orderings the memory-based strategy
  // should reduce the average max peak (the paper's overall conclusion).
  double total_gain = 0.0;
  int cells = 0;
  for (ProblemId pid : {ProblemId::kXenon2, ProblemId::kTwotone}) {
    const Problem p = make_problem(pid, 0.35);
    for (OrderingKind kind :
         {OrderingKind::kAmd, OrderingKind::kNestedDissection}) {
      ExperimentSetup base;
      base.nprocs = 16;
      base.symmetric = p.symmetric;
      base.ordering = kind;
      ExperimentSetup mem = base;
      mem.slave_strategy = SlaveStrategy::kMemoryImproved;
      mem.task_strategy = TaskStrategy::kMemoryAware;
      const StrategyComparison cmp = compare_strategies(p.matrix, base, mem);
      total_gain += cmp.percent_decrease;
      ++cells;
    }
  }
  EXPECT_GT(total_gain / cells, 0.0);
}

TEST(Integration, SequentialPeakIndependentOfProcessorCount) {
  const Problem p = make_problem(ProblemId::kMsdoor, 0.3);
  ExperimentSetup s8;
  s8.nprocs = 8;
  s8.symmetric = p.symmetric;
  ExperimentSetup s16 = s8;
  s16.nprocs = 16;
  const ExperimentOutcome a = run_experiment(p.matrix, s8);
  const ExperimentOutcome b = run_experiment(p.matrix, s16);
  EXPECT_EQ(a.sequential_peak, b.sequential_peak);
}

TEST(Integration, SplittingUnlocksMemoryGains) {
  // Table 4's mechanism: with a huge type-2 master the memory strategy is
  // limited; splitting reduces (or at least never explodes) its peak.
  const Problem p = make_problem(ProblemId::kPre2, 0.35);
  ExperimentSetup mem;
  mem.nprocs = 32;
  mem.symmetric = p.symmetric;
  mem.ordering = OrderingKind::kAmf;
  mem.slave_strategy = SlaveStrategy::kMemoryImproved;
  ExperimentSetup mem_split = mem;
  mem_split.split_threshold = 50'000;
  const ExperimentOutcome no_split = run_experiment(p.matrix, mem);
  const ExperimentOutcome split = run_experiment(p.matrix, mem_split);
  EXPECT_GT(no_split.max_stack_peak, 0);
  EXPECT_GT(split.max_stack_peak, 0);
  // Splitting may add CB traffic but must not blow the peak up.
  EXPECT_LT(static_cast<double>(split.max_stack_peak),
            1.6 * static_cast<double>(no_split.max_stack_peak));
}

TEST(Integration, MakespanLossIsBounded) {
  // Table 6: the memory strategy costs time but not catastrophically.
  const Problem p = make_problem(ProblemId::kShip003, 0.3);
  ExperimentSetup base;
  base.nprocs = 16;
  base.symmetric = p.symmetric;
  ExperimentSetup mem = base;
  mem.slave_strategy = SlaveStrategy::kMemoryImproved;
  mem.task_strategy = TaskStrategy::kMemoryAware;
  const StrategyComparison cmp = compare_strategies(p.matrix, base, mem);
  EXPECT_LT(cmp.memory_makespan, 4.0 * cmp.baseline_makespan);
}

TEST(Integration, PreparedExperimentReusable) {
  const Problem p = make_problem(ProblemId::kTwotone, 0.3);
  ExperimentSetup setup;
  setup.nprocs = 8;
  setup.symmetric = p.symmetric;
  const PreparedExperiment prepared = prepare_experiment(p.matrix, setup);
  ExperimentSetup mem = setup;
  mem.slave_strategy = SlaveStrategy::kMemory;
  const ExperimentOutcome a = run_prepared(prepared, setup);
  const ExperimentOutcome b = run_prepared(prepared, mem);
  const ExperimentOutcome a2 = run_prepared(prepared, setup);
  EXPECT_EQ(a.max_stack_peak, a2.max_stack_peak);  // pure function
  EXPECT_GT(b.max_stack_peak, 0);
}

}  // namespace
}  // namespace memfront
