#include <gtest/gtest.h>

#include <sstream>

#include "memfront/sim/memory_view.hpp"
#include "memfront/support/error.hpp"
#include "memfront/support/rng.hpp"
#include "memfront/support/stats.hpp"
#include "memfront/support/table.hpp"
#include "memfront/support/types.hpp"

namespace memfront {
namespace {

TEST(Types, TriangleAndSquare) {
  EXPECT_EQ(triangle(0), 0);
  EXPECT_EQ(triangle(1), 1);
  EXPECT_EQ(triangle(4), 10);
  EXPECT_EQ(square(5), 25);
  // 64-bit: no overflow at large orders.
  EXPECT_EQ(triangle(100000), 5000050000LL);
}

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "boom");
    FAIL() << "check(false) must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  EXPECT_THROW(require(false, "bad input"), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.uniform(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
}

TEST(Stats, MeanMaxImbalance) {
  const std::vector<count_t> xs{2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(std::span<const count_t>(xs)), 4.0);
  EXPECT_EQ(max_value(std::span<const count_t>(xs)), 6);
  EXPECT_EQ(min_value(std::span<const count_t>(xs)), 2);
  EXPECT_DOUBLE_EQ(imbalance(std::span<const count_t>(xs)), 1.5);
}

TEST(Stats, PercentDecreaseConvention) {
  // The paper reports positive numbers for improvements.
  EXPECT_DOUBLE_EQ(percent_decrease(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_decrease(100.0, 110.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_decrease(0.0, 5.0), 0.0);
}

TEST(Table, RendersAlignedCells) {
  TextTable t({"name", "value"});
  t.row();
  t.cell("alpha");
  t.cell(12);
  t.row();
  t.cell("b");
  t.cell(3.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(History, StepFunctionSemantics) {
  History h;
  EXPECT_EQ(h.current(), 0);
  h.add(1.0, 10);
  h.add(2.0, -4);
  h.add(2.0, 1);  // coalesced at the same timestamp
  EXPECT_EQ(h.current(), 7);
  EXPECT_EQ(h.value_at(0.5), 0);
  EXPECT_EQ(h.value_at(1.0), 10);
  EXPECT_EQ(h.value_at(1.5), 10);
  EXPECT_EQ(h.value_at(2.0), 7);
  EXPECT_EQ(h.value_at(99.0), 7);
}

TEST(History, SetReplacesValue) {
  History h;
  h.set(1.0, 42);
  h.set(2.0, 5);
  EXPECT_EQ(h.value_at(1.5), 42);
  EXPECT_EQ(h.current(), 5);
}

TEST(History, MonotoneTimeEnforced) {
  History h;
  h.add(5.0, 1);
  EXPECT_THROW(h.add(4.0, 1), std::logic_error);
}

}  // namespace
}  // namespace memfront
