#include <gtest/gtest.h>

#include <stdexcept>

#include "memfront/sim/memory_view.hpp"

namespace memfront {
namespace {

TEST(History, StartsAtZero) {
  History h;
  EXPECT_EQ(h.current(), 0);
  EXPECT_EQ(h.value_at(0.0), 0);
  EXPECT_EQ(h.value_at(1e9), 0);
}

TEST(History, QueryBeforeFirstPoint) {
  History h;
  h.add(1.0, 100);
  // Anything before the first change sees the initial value.
  EXPECT_EQ(h.value_at(-5.0), 0);
  EXPECT_EQ(h.value_at(0.0), 0);
  EXPECT_EQ(h.value_at(0.999), 0);
}

TEST(History, QueryExactlyAtAPoint) {
  History h;
  h.add(1.0, 100);
  h.add(2.0, 50);
  h.add(3.0, -25);
  // value_at(t) is the last change at or *before* t: inclusive at points.
  EXPECT_EQ(h.value_at(1.0), 100);
  EXPECT_EQ(h.value_at(2.0), 150);
  EXPECT_EQ(h.value_at(3.0), 125);
}

TEST(History, QueryBetweenPoints) {
  History h;
  h.add(1.0, 100);
  h.add(2.0, 50);
  h.add(4.0, -150);
  EXPECT_EQ(h.value_at(1.5), 100);
  EXPECT_EQ(h.value_at(2.5), 150);
  EXPECT_EQ(h.value_at(3.999), 150);
  EXPECT_EQ(h.value_at(4.5), 0);
}

TEST(History, QueryPastTheEndUsesLastValue) {
  History h;
  h.add(1.0, 7);
  EXPECT_EQ(h.value_at(1e12), 7);
  EXPECT_EQ(h.current(), 7);
}

TEST(History, MonotoneTimeEnforced) {
  History h;
  h.add(2.0, 10);
  EXPECT_THROW(h.add(1.0, 5), std::logic_error);
  // Equal timestamps coalesce instead of growing the history.
  const std::size_t before = h.size();
  h.add(2.0, 5);
  EXPECT_EQ(h.size(), before);
  EXPECT_EQ(h.current(), 15);
}

TEST(History, ZeroDeltaDoesNotGrowHistory) {
  History h;
  h.add(1.0, 10);
  const std::size_t before = h.size();
  h.add(5.0, 0);
  EXPECT_EQ(h.size(), before);
  // And a later query still bisects correctly.
  EXPECT_EQ(h.value_at(3.0), 10);
}

TEST(History, SetReplacesValue) {
  History h;
  h.add(1.0, 10);
  h.set(2.0, 3);
  EXPECT_EQ(h.current(), 3);
  EXPECT_EQ(h.value_at(1.5), 10);
  EXPECT_EQ(h.value_at(2.0), 3);
}

TEST(History, StartsWithReservedCapacity) {
  // Announced-state vectors live inside the hot event loop: they must
  // come up pre-reserved so typical runs never reallocate mid-simulation.
  History h;
  EXPECT_GE(h.capacity(), History::kInitialCapacity);
}

TEST(History, StressNoReallocUnderInitialCapacity) {
  History h;
  const std::size_t cap = h.capacity();
  // One initial point + (kInitialCapacity - 1) adds fit the reservation.
  for (std::size_t k = 1; k < History::kInitialCapacity; ++k)
    h.add(static_cast<double>(k), 1);
  EXPECT_EQ(h.capacity(), cap);
  EXPECT_EQ(h.current(), static_cast<count_t>(History::kInitialCapacity - 1));
}

TEST(History, StressLongRunStaysCorrectAndGrowsGeometrically) {
  // 200k points with mixed deltas and interleaved queries: values stay
  // exact and growth stays geometric (bounded reallocation count), so a
  // long announced-state history cannot thrash the hot loop.
  History h;
  std::size_t reallocs = 0;
  std::size_t cap = h.capacity();
  count_t running = 0;
  for (int k = 0; k < 200'000; ++k) {
    const count_t delta = (k % 3 == 0) ? 5 : (k % 3 == 1 ? -2 : 4);
    running += delta;
    h.add(static_cast<double>(k), delta);
    if (h.capacity() != cap) {
      ++reallocs;
      cap = h.capacity();
    }
    if (k % 10'000 == 0) {
      EXPECT_EQ(h.current(), running);
      EXPECT_EQ(h.value_at(static_cast<double>(k)), running);
      if (k > 0) EXPECT_EQ(h.value_at(0.0), 5);
    }
  }
  EXPECT_EQ(h.size(), 200'001u);  // initial point + every nonzero add
  EXPECT_EQ(h.current(), running);
  // Doubling from 64 to 200k takes ~12 steps; anything near-linear in
  // the point count would blow well past this.
  EXPECT_LE(reallocs, 16u);
  // Spot-check a bisected interior query after all the growth.
  EXPECT_EQ(h.value_at(2.5), 5 + (-2) + 4);
}

TEST(History, BisectionOnLongHistory) {
  History h;
  for (int k = 0; k < 1000; ++k) h.add(static_cast<double>(k), 1);
  // Exact hits, midpoints, and the extremes all bisect to the right step.
  EXPECT_EQ(h.value_at(0.0), 1);
  EXPECT_EQ(h.value_at(499.0), 500);
  EXPECT_EQ(h.value_at(499.5), 500);
  EXPECT_EQ(h.value_at(998.5), 999);
  EXPECT_EQ(h.value_at(999.0), 1000);
  EXPECT_EQ(h.value_at(-2.0), 0);
}

}  // namespace
}  // namespace memfront
