// Blocked frontal kernels vs the pre-blocking scalar references: the
// blocked panel/TRSM/GEMM pipeline must reproduce the scalar kernels bit
// for bit (pivot sequences AND every stored value), the signbit
// perturbation fix, the mapped extend-add scatter, and the arena's LIFO
// discipline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "memfront/frontal/arena.hpp"
#include "memfront/frontal/extend_add.hpp"
#include "memfront/frontal/kernels.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

std::vector<double> random_front(index_t n, std::uint64_t seed,
                                 bool dominant) {
  Rng rng(seed);
  std::vector<double> data(static_cast<std::size_t>(n) * n);
  for (double& v : data) v = rng.real(-1.0, 1.0);
  if (dominant) {
    for (index_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (index_t c = 0; c < n; ++c)
        sum += std::abs(data[static_cast<std::size_t>(c) * n + r]);
      data[static_cast<std::size_t>(r) * n + r] = sum + 1.0;
    }
  }
  return data;
}

std::vector<double> random_symmetric(index_t n, std::uint64_t seed) {
  std::vector<double> a = random_front(n, seed, true);
  std::vector<double> s(a.size());
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r)
      s[static_cast<std::size_t>(c) * n + r] =
          0.5 * (a[static_cast<std::size_t>(c) * n + r] +
                 a[static_cast<std::size_t>(r) * n + c]);
  return s;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, index_t n,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0) return;
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r) {
      const std::size_t k = static_cast<std::size_t>(c) * n + r;
      ASSERT_EQ(a[k], b[k]) << what << ": first differing entry (" << r
                            << "," << c << ")";
    }
  FAIL() << what << ": bit pattern differs (signed zero or NaN)";
}

void check_lu_bitwise(index_t n, index_t npiv, std::uint64_t seed,
                      bool dominant) {
  std::vector<double> blocked = random_front(n, seed, dominant);
  std::vector<double> reference = blocked;
  const PartialFactorResult br =
      partial_lu_blocked(FrontView{blocked.data(), n, n}, npiv);
  const PartialFactorResult rr =
      partial_lu_reference(FrontView{reference.data(), n, n}, npiv);
  EXPECT_EQ(br.pivot_rows, rr.pivot_rows)
      << "n=" << n << " npiv=" << npiv << " seed=" << seed;
  EXPECT_EQ(br.perturbations, rr.perturbations);
  expect_bitwise_equal(blocked, reference, n, "partial_lu");
}

void check_ldlt_bitwise(index_t n, index_t npiv, std::uint64_t seed) {
  std::vector<double> blocked = random_symmetric(n, seed);
  std::vector<double> reference = blocked;
  const PartialFactorResult br =
      partial_ldlt_blocked(FrontView{blocked.data(), n, n}, npiv);
  const PartialFactorResult rr =
      partial_ldlt_reference(FrontView{reference.data(), n, n}, npiv);
  EXPECT_EQ(br.pivot_rows, rr.pivot_rows)
      << "n=" << n << " npiv=" << npiv << " seed=" << seed;
  EXPECT_EQ(br.perturbations, rr.perturbations);
  expect_bitwise_equal(blocked, reference, n, "partial_ldlt");
}

TEST(NumericKernels, BlockedLuBitIdenticalToReference) {
  // Sizes straddling every tile boundary: inside one panel, exactly one
  // panel, several panels, microkernel edge remainders.
  check_lu_bitwise(1, 1, 1, true);
  check_lu_bitwise(5, 3, 2, true);
  check_lu_bitwise(16, 9, 3, true);
  check_lu_bitwise(48, 48, 4, true);
  check_lu_bitwise(49, 30, 5, true);
  check_lu_bitwise(96, 64, 6, true);
  check_lu_bitwise(130, 130, 7, true);
  check_lu_bitwise(150, 70, 8, true);
  check_lu_bitwise(257, 129, 9, true);
}

TEST(NumericKernels, BlockedLuBitIdenticalUnderHeavyPivoting) {
  // Non-dominant fronts: the pivot search actually moves rows, so the
  // deferred interchange application is exercised for real.
  check_lu_bitwise(32, 20, 11, false);
  check_lu_bitwise(97, 60, 12, false);
  check_lu_bitwise(144, 144, 13, false);
  check_lu_bitwise(200, 101, 14, false);
}

TEST(NumericKernels, BlockedLdltBitIdenticalToReference) {
  check_ldlt_bitwise(1, 1, 21);
  check_ldlt_bitwise(7, 4, 22);
  check_ldlt_bitwise(48, 48, 23);
  check_ldlt_bitwise(50, 29, 24);
  check_ldlt_bitwise(96, 50, 25);
  check_ldlt_bitwise(131, 131, 26);
  check_ldlt_bitwise(190, 95, 27);
}

TEST(NumericKernels, SchurUpdateMatchesScalarRankUpdates) {
  // C -= A·B must equal the k-ordered sequence of rank-1 subtractions
  // bit for bit (that equivalence is what makes the blocked kernels
  // exact drop-ins).
  const index_t m = 37, n = 29, kb = 13;
  Rng rng(99);
  std::vector<double> a(static_cast<std::size_t>(m) * kb);
  std::vector<double> b(static_cast<std::size_t>(kb) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  for (double& v : a) v = rng.real(-1.0, 1.0);
  for (double& v : b) v = rng.real(-1.0, 1.0);
  for (double& v : c) v = rng.real(-1.0, 1.0);
  std::vector<double> expected = c;
  for (index_t k = 0; k < kb; ++k)
    for (index_t j = 0; j < n; ++j) {
      const double w = b[static_cast<std::size_t>(j) * kb + k];
      for (index_t i = 0; i < m; ++i)
        expected[static_cast<std::size_t>(j) * m + i] -=
            a[static_cast<std::size_t>(k) * m + i] * w;
    }
  schur_update(m, n, kb, a.data(), m, b.data(), kb, c.data(), m);
  EXPECT_EQ(0, std::memcmp(c.data(), expected.data(),
                           c.size() * sizeof(double)));
}

TEST(NumericKernels, SignbitPreservingPerturbation) {
  // -0.0 pivots must perturb to -kPivotFloor (the old `d >= 0` test
  // flipped them positive).
  for (const bool blocked : {true, false}) {
    std::vector<double> lu{-0.0, 0.0, 1.0, 1.0};  // column-major 2x2
    const PartialFactorResult lr =
        blocked ? partial_lu_blocked(FrontView{lu.data(), 2, 2}, 1)
                : partial_lu_reference(FrontView{lu.data(), 2, 2}, 1);
    EXPECT_EQ(lr.perturbations, 1);
    EXPECT_EQ(lu[0], -kPivotFloor) << "blocked=" << blocked;

    std::vector<double> ld{-0.0, 0.0, 0.0, 1.0};
    const PartialFactorResult dr =
        blocked ? partial_ldlt_blocked(FrontView{ld.data(), 2, 2}, 1)
                : partial_ldlt_reference(FrontView{ld.data(), 2, 2}, 1);
    EXPECT_EQ(dr.perturbations, 1);
    EXPECT_EQ(ld[0], -kPivotFloor) << "blocked=" << blocked;

    std::vector<double> pos{0.0, 0.0, 1.0, 1.0};
    const PartialFactorResult pr =
        blocked ? partial_lu_blocked(FrontView{pos.data(), 2, 2}, 1)
                : partial_lu_reference(FrontView{pos.data(), 2, 2}, 1);
    EXPECT_EQ(pr.perturbations, 1);
    EXPECT_EQ(pos[0], kPivotFloor);
  }
}

TEST(NumericKernels, ExtendAddMappedScattersThroughLocalMap) {
  std::vector<double> parent(16, 0.0);  // 4x4
  FrontView pv{parent.data(), 4, 4};
  const std::vector<double> cb{1.0, 3.0, 2.0, 4.0};  // 2x2 column-major
  const std::vector<index_t> positions{1, 3};
  extend_add_mapped(pv, cb.data(), 2, 2, positions);
  extend_add_mapped(pv, cb.data(), 2, 2, positions);  // accumulates
  EXPECT_DOUBLE_EQ(pv.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(pv.at(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(pv.at(3, 1), 6.0);
  EXPECT_DOUBLE_EQ(pv.at(3, 3), 8.0);
  EXPECT_DOUBLE_EQ(pv.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(pv.at(2, 2), 0.0);
}

TEST(FrontalArenaTest, LifoPushPopTracksPeak) {
  FrontalArena arena;
  double* a = arena.push(100);
  double* b = arena.push(50);
  EXPECT_EQ(arena.in_use(), 150u);
  EXPECT_EQ(arena.peak(), 150u);
  arena.pop(b, 50);
  double* c = arena.push(25);
  EXPECT_EQ(arena.in_use(), 125u);
  EXPECT_EQ(arena.peak(), 150u);
  arena.pop(c, 25);
  arena.pop(a, 100);
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.peak(), 150u);
}

TEST(FrontalArenaTest, PopOutOfOrderThrows) {
  FrontalArena arena;
  double* a = arena.push(10);
  double* b = arena.push(20);
  EXPECT_THROW(arena.pop(a, 10), std::logic_error);
  arena.pop(b, 20);
  arena.pop(a, 10);
}

TEST(FrontalArenaTest, GrowsAcrossSlabsWithStablePointers) {
  FrontalArena arena(128);  // deliberately tiny reserve
  std::vector<std::pair<double*, std::size_t>> live;
  for (int i = 0; i < 20; ++i) {
    const std::size_t count = 100'000;  // forces fresh slabs
    double* p = arena.push(count);
    p[0] = static_cast<double>(i);
    p[count - 1] = -static_cast<double>(i);
    live.emplace_back(p, count);
  }
  EXPECT_GE(arena.slab_allocations(), 2u);
  for (int i = 0; i < 20; ++i) {  // earlier slots untouched by growth
    EXPECT_EQ(live[static_cast<std::size_t>(i)].first[0], i);
  }
  for (std::size_t i = live.size(); i-- > 0;)
    arena.pop(live[i].first, live[i].second);
  EXPECT_EQ(arena.in_use(), 0u);
  // Emptied slabs are reused, not reallocated.
  const std::size_t slabs = arena.slab_allocations();
  double* again = arena.push(100'000);
  EXPECT_EQ(arena.slab_allocations(), slabs);
  arena.pop(again, 100'000);
}

TEST(FrontalArenaTest, ZeroSizedAllocationsAreNoops) {
  FrontalArena arena;
  EXPECT_EQ(arena.push(0), nullptr);
  arena.pop(nullptr, 0);
  EXPECT_EQ(arena.in_use(), 0u);
}

}  // namespace
}  // namespace memfront
