#include <gtest/gtest.h>

#include <cmath>

#include "memfront/frontal/block_cyclic.hpp"
#include "memfront/frontal/dense_matrix.hpp"
#include "memfront/frontal/extend_add.hpp"
#include "memfront/frontal/partial_factor.hpp"
#include "memfront/support/rng.hpp"

namespace memfront {
namespace {

DenseMatrix random_dominant(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r)
      if (r != c) m(r, c) = rng.real(-1.0, 1.0);
  for (index_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (index_t c = 0; c < n; ++c) sum += std::abs(m(r, c));
    m(r, r) = sum + 1.0;
  }
  return m;
}

DenseMatrix random_spd(index_t n, std::uint64_t seed) {
  DenseMatrix a = random_dominant(n, seed);
  DenseMatrix s(n, n);
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r) s(r, c) = 0.5 * (a(r, c) + a(c, r));
  return s;
}

/// Reconstructs L*U from a partially factored front and compares with the
/// pivoted original on the eliminated part; checks the Schur complement
/// against a naive elimination.
void check_partial_lu(index_t n, index_t npiv, std::uint64_t seed) {
  const DenseMatrix original = random_dominant(n, seed);
  DenseMatrix work = original;
  const PartialFactorResult pf = partial_lu(work, npiv);
  ASSERT_EQ(static_cast<index_t>(pf.pivot_rows.size()), npiv);
  EXPECT_EQ(pf.perturbations, 0);

  // Apply the recorded swaps to a copy of the original.
  DenseMatrix p = original;
  for (index_t k = 0; k < npiv; ++k)
    p.swap_rows(k, pf.pivot_rows[static_cast<std::size_t>(k)]);

  // Naive right-looking elimination of npiv pivots on the same matrix.
  DenseMatrix ref = p;
  for (index_t k = 0; k < npiv; ++k) {
    for (index_t r = k + 1; r < n; ++r) {
      const double l = ref(r, k) / ref(k, k);
      for (index_t c = k + 1; c < n; ++c) ref(r, c) -= l * ref(k, c);
      ref(r, k) = l;
    }
  }
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r)
      EXPECT_NEAR(work(r, c), ref(r, c), 1e-9)
          << "entry (" << r << "," << c << ")";
}

TEST(PartialLu, MatchesNaiveElimination) {
  check_partial_lu(8, 3, 1);
  check_partial_lu(12, 12, 2);  // full factorization
  check_partial_lu(10, 1, 3);
  check_partial_lu(16, 9, 4);
}

TEST(PartialLu, PivotingPicksLargestFullySummed) {
  DenseMatrix m(3, 3);
  m(0, 0) = 0.1;
  m(1, 0) = 5.0;  // fully summed (npiv=2): must be chosen
  m(2, 0) = 9.0;  // NOT fully summed: must not be chosen
  m(0, 1) = 1.0;
  m(1, 1) = 1.0;
  m(2, 2) = 1.0;
  const PartialFactorResult pf = partial_lu(m, 2);
  EXPECT_EQ(pf.pivot_rows[0], 1);
}

TEST(PartialLu, PerturbsSingularPivot) {
  DenseMatrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 0.0;
  m(1, 1) = 1.0;
  // npiv=1 and the only eligible pivot is exactly zero.
  const PartialFactorResult pf = partial_lu(m, 1);
  EXPECT_EQ(pf.perturbations, 1);
}

TEST(PartialLdlt, ReconstructsSymmetricMatrix) {
  const index_t n = 10, npiv = 10;
  const DenseMatrix original = random_spd(n, 5);
  DenseMatrix work = original;
  const PartialFactorResult pf = partial_ldlt(work, npiv);
  EXPECT_EQ(pf.perturbations, 0);
  // A == L D Lᵀ with L unit lower (panel), D the diagonal.
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (index_t k = 0; k <= j; ++k) {
        const double lik = i == k ? 1.0 : work(i, k);
        const double ljk = j == k ? 1.0 : work(j, k);
        sum += lik * work(k, k) * ljk;
      }
      EXPECT_NEAR(sum, original(i, j), 1e-8)
          << "entry (" << i << "," << j << ")";
    }
}

TEST(PartialLdlt, SchurComplementSymmetric) {
  const index_t n = 12, npiv = 5;
  DenseMatrix work = random_spd(n, 6);
  partial_ldlt(work, npiv);
  for (index_t r = npiv; r < n; ++r)
    for (index_t c = npiv; c < n; ++c)
      EXPECT_NEAR(work(r, c), work(c, r), 1e-9);
}

TEST(ExtendAdd, ScattersByGlobalIndex) {
  DenseMatrix parent(4, 4);
  const std::vector<index_t> parent_rows{3, 7, 9, 12};
  DenseMatrix cb(2, 2);
  cb(0, 0) = 1.0;
  cb(0, 1) = 2.0;
  cb(1, 0) = 3.0;
  cb(1, 1) = 4.0;
  const std::vector<index_t> child_rows{7, 12};
  extend_add(parent, parent_rows, cb, child_rows);
  EXPECT_DOUBLE_EQ(parent(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(parent(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(parent(3, 1), 3.0);
  EXPECT_DOUBLE_EQ(parent(3, 3), 4.0);
  EXPECT_DOUBLE_EQ(parent(0, 0), 0.0);
}

TEST(ExtendAdd, AccumulatesMultipleChildren) {
  DenseMatrix parent(2, 2);
  const std::vector<index_t> parent_rows{1, 2};
  DenseMatrix cb(1, 1);
  cb(0, 0) = 2.5;
  extend_add(parent, parent_rows, cb, std::vector<index_t>{2});
  extend_add(parent, parent_rows, cb, std::vector<index_t>{2});
  EXPECT_DOUBLE_EQ(parent(1, 1), 5.0);
}

TEST(ExtendAdd, RejectsMissingRow) {
  DenseMatrix parent(2, 2);
  DenseMatrix cb(1, 1);
  EXPECT_THROW(extend_add(parent, std::vector<index_t>{1, 2}, cb,
                          std::vector<index_t>{5}),
               std::logic_error);
}

TEST(BlockCyclic, EntriesPartitionTheMatrix) {
  for (index_t nprocs : {1, 4, 6, 16}) {
    const BlockCyclicLayout grid = choose_grid(nprocs, 8);
    EXPECT_EQ(grid.pr * grid.pc, nprocs);  // our grids use every process
    for (index_t n : {5, 64, 131}) {
      count_t total = 0;
      for (index_t pr = 0; pr < grid.pr; ++pr)
        for (index_t pc = 0; pc < grid.pc; ++pc)
          total += entries_on_process(grid, n, pr, pc);
      EXPECT_EQ(total, static_cast<count_t>(n) * n)
          << "P=" << nprocs << " n=" << n;
    }
  }
}

TEST(BlockCyclic, MaxIsAtOrigin) {
  const BlockCyclicLayout grid = choose_grid(8, 16);
  for (index_t n : {40, 100, 333}) {
    const count_t mx = max_entries_per_process(grid, n);
    for (index_t pr = 0; pr < grid.pr; ++pr)
      for (index_t pc = 0; pc < grid.pc; ++pc)
        EXPECT_LE(entries_on_process(grid, n, pr, pc), mx);
  }
}

TEST(BlockCyclic, GridNearSquare) {
  EXPECT_EQ(choose_grid(16).pr, 4);
  EXPECT_EQ(choose_grid(32).pr, 4);
  EXPECT_EQ(choose_grid(32).pc, 8);
  EXPECT_EQ(choose_grid(1).pr, 1);
  EXPECT_EQ(choose_grid(7).pr, 1);  // prime: 1 x 7
}

TEST(BlockCyclic, LuFlopsCubic) {
  EXPECT_NEAR(static_cast<double>(dense_lu_flops(300)),
              2.0 / 3.0 * 300.0 * 300.0 * 300.0, 1e6);
}

}  // namespace
}  // namespace memfront
