#include <gtest/gtest.h>

#include <sstream>

#include "memfront/sim/event_queue.hpp"
#include "memfront/sim/machine.hpp"
#include "memfront/sim/trace.hpp"

namespace memfront {
namespace {

// Event-queue coverage (ordering, FIFO ties, per-kind counts, slab
// reuse) lives in tests/event_queue_test.cpp; here only the machine
// cost model and trace pieces.

TEST(Machine, CostModel) {
  MachineParams params;
  params.latency = 1e-5;
  params.bandwidth = 1e8;
  params.flop_rate = 1e9;
  params.assemble_rate = 5e8;
  Machine m(params);
  EXPECT_DOUBLE_EQ(m.transfer_time(0), 1e-5);
  EXPECT_DOUBLE_EQ(m.transfer_time(100'000'000), 1.0 + 1e-5);
  EXPECT_DOUBLE_EQ(m.compute_time(2'000'000'000), 2.0);
  EXPECT_DOUBLE_EQ(m.assemble_time(500'000'000), 1.0);
}

TEST(Machine, MessageCounters) {
  Machine m(MachineParams{});
  m.count_message(100);
  m.count_message(50);
  EXPECT_EQ(m.messages(), 2);
  EXPECT_EQ(m.comm_entries(), 150);
}

TEST(Trace, CsvOutput) {
  Trace t;
  t.record(0.5, 2, 1000);
  t.record(1.5, 0, 500);
  t.annotate(0.7, 2, "activation");
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("time,proc,stack_entries"), std::string::npos);
  EXPECT_NE(s.find("0.5,2,1000"), std::string::npos);
  EXPECT_NE(s.find("1.5,0,500"), std::string::npos);
  EXPECT_EQ(t.annotations().size(), 1u);
}

}  // namespace
}  // namespace memfront
