#include <gtest/gtest.h>

#include <map>

#include "memfront/core/task_pool.hpp"
#include "memfront/core/task_selection.hpp"

namespace memfront {
namespace {

struct Scenario {
  std::map<index_t, count_t> cost;
  std::map<index_t, bool> subtree;
  TaskSelectionContext ctx(count_t projected, count_t peak) {
    return TaskSelectionContext{
        .activation_entries = [this](index_t n) { return cost.at(n); },
        .in_subtree = [this](index_t n) { return subtree.at(n); },
        .projected_memory = projected,
        .observed_peak = peak,
    };
  }
};

TEST(TaskPool, StackDiscipline) {
  TaskPool pool;
  EXPECT_TRUE(pool.empty());
  pool.push(1);
  pool.push(2);
  pool.push(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.top(), 3);
  EXPECT_EQ(pool.take(2), 3);  // take the top
  EXPECT_EQ(pool.take(0), 1);  // take the bottom
  EXPECT_EQ(pool.top(), 2);
}

TEST(Lifo, AlwaysTop) {
  const std::vector<index_t> pool{4, 7, 9};
  EXPECT_EQ(select_task_lifo(pool), 2u);
}

TEST(Algorithm2, SubtreeTopIsAlwaysTaken) {
  // "if the node of the top of the pool is inside a subtree then return
  // the node of the top of the pool" — even when its cost is huge.
  Scenario s;
  s.cost = {{1, 10}, {2, 1'000'000}};
  s.subtree = {{1, false}, {2, true}};
  const std::vector<index_t> pool{1, 2};
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 1u);
}

TEST(Algorithm2, LargeUpperTaskDelayed) {
  // Figure 8: a large type-2 master became ready while the processor is
  // near its peak; Algorithm 2 must pick a fitting task further down.
  Scenario s;
  s.cost = {{10, 900}, {11, 50}};     // 10 = big master, 11 = small task
  s.subtree = {{10, false}, {11, false}};
  const std::vector<index_t> pool{11, 10};  // big master on top
  // projected 500, peak 600: top (900+500 > 600) skipped, 11 fits (550).
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 0u);
}

TEST(Algorithm2, TopTakenWhenItFits) {
  Scenario s;
  s.cost = {{10, 50}, {11, 10}};
  s.subtree = {{10, false}, {11, false}};
  const std::vector<index_t> pool{11, 10};
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 1u);
}

TEST(Algorithm2, SubtreeTaskPreferredWhenNothingFits) {
  // Nothing fits under the peak, but a subtree task exists below the top:
  // it gets priority over violating the peak with an upper task.
  Scenario s;
  s.cost = {{1, 800}, {2, 700}, {3, 900}};
  s.subtree = {{1, false}, {2, true}, {3, false}};
  const std::vector<index_t> pool{1, 2, 3};
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 1u);
}

TEST(Algorithm2, FallsBackToTop) {
  Scenario s;
  s.cost = {{1, 800}, {2, 900}};
  s.subtree = {{1, false}, {2, false}};
  const std::vector<index_t> pool{1, 2};
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 1u);
}

TEST(Algorithm2, ScanOrderIsTopDown) {
  // Two fitting tasks: the one nearest the top wins (stay close to
  // depth-first, as the paper requires).
  Scenario s;
  s.cost = {{1, 10}, {2, 10}, {3, 1000}};
  s.subtree = {{1, false}, {2, false}, {3, false}};
  const std::vector<index_t> pool{1, 2, 3};
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(100, 200)), 1u);
}

TEST(Algorithm2, PeakGrowthAllowedExactlyAtBound) {
  Scenario s;
  s.cost = {{1, 100}};
  s.subtree = {{1, false}};
  const std::vector<index_t> pool{1};
  // cost + projected == peak: allowed (<=).
  EXPECT_EQ(select_task_memory_aware(pool, s.ctx(500, 600)), 0u);
}

}  // namespace
}  // namespace memfront
