#include <gtest/gtest.h>

#include <algorithm>

#include "memfront/ordering/ordering.hpp"
#include "memfront/solver/analysis.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

Analysis small_analysis(ProblemId pid, OrderingKind kind,
                        count_t split = 0) {
  const Problem p = make_problem(pid, 0.2);
  AnalysisOptions opt;
  opt.ordering = kind;
  opt.symmetric = p.symmetric;
  opt.split_master_threshold = split;
  return analyze(p.matrix, opt);
}

TEST(Structure, TotalEntriesMatchFrontSum) {
  const Analysis a = small_analysis(ProblemId::kTwotone, OrderingKind::kAmd);
  count_t total = 0;
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) total += a.tree.nfront(i);
  EXPECT_EQ(a.structure->total_entries(), total);
}

TEST(Structure, RowsSortedAndPivotsPrefix) {
  const Analysis a =
      small_analysis(ProblemId::kXenon2, OrderingKind::kNestedDissection);
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) {
    const auto rows = a.structure->rows(i);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end())) << "node " << i;
    for (index_t k = 0; k < a.tree.npiv(i); ++k)
      EXPECT_EQ(rows[static_cast<std::size_t>(k)], a.tree.first_col(i) + k);
  }
}

TEST(Structure, ContributionRowsContainedInParentFront) {
  const Analysis a = small_analysis(ProblemId::kMsdoor, OrderingKind::kAmf);
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) {
    const index_t parent = a.tree.parent(i);
    if (parent == kNone) continue;
    const auto rows = a.structure->rows(i);
    const auto prows = a.structure->rows(parent);
    for (std::size_t k = static_cast<std::size_t>(a.tree.npiv(i));
         k < rows.size(); ++k) {
      EXPECT_TRUE(std::binary_search(prows.begin(), prows.end(), rows[k]))
          << "node " << i << " cb row " << rows[k];
    }
  }
}

TEST(Structure, ContributionRowsExceedOwnPivots) {
  const Analysis a = small_analysis(ProblemId::kGupta3, OrderingKind::kAmd);
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) {
    const auto rows = a.structure->rows(i);
    const index_t last_piv = a.tree.first_col(i) + a.tree.npiv(i) - 1;
    for (std::size_t k = static_cast<std::size_t>(a.tree.npiv(i));
         k < rows.size(); ++k)
      EXPECT_GT(rows[k], last_piv);
  }
}

TEST(Structure, SplitChainRowsAreSuffixes) {
  // With splitting, a chain piece's rows must be a suffix of the piece
  // below it (the front is the same matrix minus eliminated pivots).
  const Analysis a =
      small_analysis(ProblemId::kTwotone, OrderingKind::kAmf, 2'000);
  ASSERT_GT(a.num_split_nodes, 0);
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) {
    if (!a.tree.is_chain_link(i)) continue;
    const index_t parent = a.tree.parent(i);
    const auto rows = a.structure->rows(i);
    const auto prows = a.structure->rows(parent);
    ASSERT_EQ(prows.size() + static_cast<std::size_t>(a.tree.npiv(i)),
              rows.size());
    for (std::size_t k = 0; k < prows.size(); ++k)
      EXPECT_EQ(prows[k], rows[k + static_cast<std::size_t>(a.tree.npiv(i))]);
  }
}

TEST(Structure, EveryMatrixEntryCoveredByAFront) {
  // Each (permuted) entry a(r,c) with r,c >= min(r,c)'s node first_col
  // must appear inside the front of the node owning min(r,c).
  const Analysis a = small_analysis(ProblemId::kXenon2, OrderingKind::kAmd);
  const CscMatrix& m = *a.permuted;
  for (index_t c = 0; c < m.ncols(); ++c) {
    for (index_t r : m.column(c)) {
      const index_t lo = std::min(r, c), hi = std::max(r, c);
      const index_t node = a.tree.node_of_col(lo);
      const auto rows = a.structure->rows(node);
      EXPECT_TRUE(std::binary_search(rows.begin(), rows.end(), hi))
          << "entry (" << r << "," << c << ")";
    }
  }
}

}  // namespace
}  // namespace memfront
