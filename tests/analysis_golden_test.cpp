// Golden pins for the analysis phase: ordering + symbolic + splitting.
//
// The ordering/symbolic kernel rewrites (flat workspaces in the
// minimum-degree engine, FM bisection workspace reuse, the O(E) relabel
// scatter in build_assembly_tree) must keep the produced permutation and
// assembly tree *bit-identical* — a different tie-break anywhere moves
// every downstream scheduling number. These pins were captured from the
// pre-rewrite binaries (PR 3, commit abedf6c) at scale 0.5 for every
// Table 1 problem x paper ordering, with and without static splitting:
// FNV-1a hashes of the permutation, the tree shape (npiv, nfront,
// parent per node), the traversal order, and the per-node subtree peaks,
// plus the sequential peak and split-node count in the clear.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "memfront/solver/analysis.hpp"
#include "memfront/sparse/problems.hpp"

namespace memfront {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
std::uint64_t hash_seq(const std::vector<T>& xs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const T& x : xs) h = fnv1a(h, static_cast<std::uint64_t>(x));
  return h;
}

struct AnalysisGolden {
  ProblemId id;
  OrderingKind ordering;
  count_t split_threshold;  // 0 = no static splitting
  std::uint64_t perm_hash;
  index_t num_nodes;
  std::uint64_t tree_hash;       // (npiv, nfront, parent) per node
  std::uint64_t traversal_hash;  // Liu-reordered DFS postorder
  std::uint64_t subtree_peak_hash;
  count_t sequential_peak;
  index_t num_split_nodes;
};

// Captured at scale 0.5 from the pre-rewrite analysis (commit abedf6c).
constexpr AnalysisGolden kAnalysisGolden[] = {
    {ProblemId::kBmwCra1, OrderingKind::kNestedDissection, 0, 0x452c277d3edbf909ULL, 28, 0x409cbf37e0d293acULL, 0xef94199637df73a5ULL, 0xcce0780a26440fd2ULL, 55191, 0},
    {ProblemId::kBmwCra1, OrderingKind::kNestedDissection, 5000, 0x452c277d3edbf909ULL, 29, 0xfd6912d1f578c47bULL, 0xd2c8ed6134b6fe79ULL, 0x45b3853e93711c78ULL, 55191, 1},
    {ProblemId::kBmwCra1, OrderingKind::kPord, 0, 0x6a1b93b2eae4024dULL, 31, 0xb1b8196b787e5bfcULL, 0xe61b9166a5696a9aULL, 0x509930059052271cULL, 55191, 0},
    {ProblemId::kBmwCra1, OrderingKind::kPord, 5000, 0x6a1b93b2eae4024dULL, 32, 0x497af58a969f7509ULL, 0x432878d9448237e5ULL, 0x1325885c8d8e5bc2ULL, 55191, 1},
    {ProblemId::kBmwCra1, OrderingKind::kAmd, 0, 0x076099ab80b52705ULL, 35, 0x3103f2c2cf30bdaaULL, 0xc647188f884559a6ULL, 0x59084e415adb3c17ULL, 76920, 0},
    {ProblemId::kBmwCra1, OrderingKind::kAmd, 5000, 0x076099ab80b52705ULL, 35, 0x3103f2c2cf30bdaaULL, 0xc647188f884559a6ULL, 0x59084e415adb3c17ULL, 76920, 0},
    {ProblemId::kBmwCra1, OrderingKind::kAmf, 0, 0x9ff731101bba3c85ULL, 37, 0x801c9bff9e9591b6ULL, 0x64fa81ff138c8a61ULL, 0x1dc734345c4713e5ULL, 36321, 0},
    {ProblemId::kBmwCra1, OrderingKind::kAmf, 5000, 0x9ff731101bba3c85ULL, 37, 0x801c9bff9e9591b6ULL, 0x64fa81ff138c8a61ULL, 0x1dc734345c4713e5ULL, 36321, 0},
    {ProblemId::kGupta3, OrderingKind::kNestedDissection, 0, 0x5b21e264fb35d831ULL, 37, 0x9ca9476ce6f34d0dULL, 0xb00559424d2c7e01ULL, 0x767235788dc7e17dULL, 760178, 0},
    {ProblemId::kGupta3, OrderingKind::kNestedDissection, 5000, 0x5b21e264fb35d831ULL, 37, 0x9ca9476ce6f34d0dULL, 0xb00559424d2c7e01ULL, 0x767235788dc7e17dULL, 760178, 0},
    {ProblemId::kGupta3, OrderingKind::kPord, 0, 0x69194af254907a3dULL, 34, 0x0015c0eb2c754822ULL, 0x748e4b4331612484ULL, 0x121daf2e0325ba98ULL, 811515, 0},
    {ProblemId::kGupta3, OrderingKind::kPord, 5000, 0x69194af254907a3dULL, 34, 0x0015c0eb2c754822ULL, 0x748e4b4331612484ULL, 0x121daf2e0325ba98ULL, 811515, 0},
    {ProblemId::kGupta3, OrderingKind::kAmd, 0, 0x00cccc0b5a785ee9ULL, 37, 0xb7da0c57fc351582ULL, 0x93948da759548001ULL, 0x507c83751e9db1d9ULL, 760178, 0},
    {ProblemId::kGupta3, OrderingKind::kAmd, 5000, 0x00cccc0b5a785ee9ULL, 37, 0xb7da0c57fc351582ULL, 0x93948da759548001ULL, 0x507c83751e9db1d9ULL, 760178, 0},
    {ProblemId::kGupta3, OrderingKind::kAmf, 0, 0x6d626ad1136029c5ULL, 34, 0x02084941a83a2476ULL, 0xbdb266b28853ef84ULL, 0xbe8c11ff18e3ece4ULL, 811515, 0},
    {ProblemId::kGupta3, OrderingKind::kAmf, 5000, 0x6d626ad1136029c5ULL, 34, 0x02084941a83a2476ULL, 0xbdb266b28853ef84ULL, 0xbe8c11ff18e3ece4ULL, 811515, 0},
    {ProblemId::kMsdoor, OrderingKind::kNestedDissection, 0, 0xee2718539d741bcdULL, 319, 0x1dad07a5027501b6ULL, 0x1aec81fcb297bb85ULL, 0x6e1b1e18a86d3b58ULL, 77012, 0},
    {ProblemId::kMsdoor, OrderingKind::kNestedDissection, 5000, 0xee2718539d741bcdULL, 320, 0x9c243ba56d489c3dULL, 0x0ac716c8ffe347a9ULL, 0xc335512953c5db51ULL, 77012, 1},
    {ProblemId::kMsdoor, OrderingKind::kPord, 0, 0x0bfec097322076c5ULL, 269, 0x417fb6620cf3b6fdULL, 0xebfee868a5fa3c02ULL, 0xbd96941aded0b615ULL, 88930, 0},
    {ProblemId::kMsdoor, OrderingKind::kPord, 5000, 0x0bfec097322076c5ULL, 270, 0x32e8c32e1392d6a5ULL, 0xd3375366cc526960ULL, 0xe0f59e22b994d8eaULL, 88930, 1},
    {ProblemId::kMsdoor, OrderingKind::kAmd, 0, 0x001929b85d1b83c5ULL, 349, 0x281d5ee68f16bb89ULL, 0x784b063d887b8a1aULL, 0x48e4a4ba5bcba016ULL, 176214, 0},
    {ProblemId::kMsdoor, OrderingKind::kAmd, 5000, 0x001929b85d1b83c5ULL, 351, 0xbfce6d5df45fcb9cULL, 0x58af7140c152c0e5ULL, 0x70ec76955b740e78ULL, 176214, 2},
    {ProblemId::kMsdoor, OrderingKind::kAmf, 0, 0x25e261062a8ae795ULL, 299, 0xb14e904be5c8bf98ULL, 0x8124c5f2b4794321ULL, 0x51bb48b633db21a4ULL, 95202, 0},
    {ProblemId::kMsdoor, OrderingKind::kAmf, 5000, 0x25e261062a8ae795ULL, 300, 0x960179aa802ccd94ULL, 0x8eab7fe125450715ULL, 0xdcd6797d2194513aULL, 95202, 1},
    {ProblemId::kShip003, OrderingKind::kNestedDissection, 0, 0x40be49479631dae5ULL, 58, 0xdb0a500cffb1eec2ULL, 0xce7892beac9f13a4ULL, 0x0f92b09d3335c10dULL, 87687, 0},
    {ProblemId::kShip003, OrderingKind::kNestedDissection, 5000, 0x40be49479631dae5ULL, 59, 0x4584b46f3fe1cf43ULL, 0x5711663c723d933eULL, 0xc5b41565a87ec771ULL, 87687, 1},
    {ProblemId::kShip003, OrderingKind::kPord, 0, 0x30b915a813f2e2c9ULL, 76, 0x4af92a7829042c2bULL, 0x08c8f10dc6f0f9a5ULL, 0x6325135f9397b529ULL, 56172, 0},
    {ProblemId::kShip003, OrderingKind::kPord, 5000, 0x30b915a813f2e2c9ULL, 76, 0x4af92a7829042c2bULL, 0x08c8f10dc6f0f9a5ULL, 0x6325135f9397b529ULL, 56172, 0},
    {ProblemId::kShip003, OrderingKind::kAmd, 0, 0xddd3badcc1009af5ULL, 102, 0x34067fdedd46d5d1ULL, 0x65f7edfdaffeee44ULL, 0x396a16946f59be64ULL, 102447, 0},
    {ProblemId::kShip003, OrderingKind::kAmd, 5000, 0xddd3badcc1009af5ULL, 102, 0x34067fdedd46d5d1ULL, 0x65f7edfdaffeee44ULL, 0x396a16946f59be64ULL, 102447, 0},
    {ProblemId::kShip003, OrderingKind::kAmf, 0, 0x6b7d87d99909a4e5ULL, 98, 0xc57b805fc6973d62ULL, 0x7733ecd7fde14ec4ULL, 0x894ffb41818c7650ULL, 46413, 0},
    {ProblemId::kShip003, OrderingKind::kAmf, 5000, 0x6b7d87d99909a4e5ULL, 98, 0xc57b805fc6973d62ULL, 0x7733ecd7fde14ec4ULL, 0x894ffb41818c7650ULL, 46413, 0},
    {ProblemId::kPre2, OrderingKind::kNestedDissection, 0, 0xd2c11c4e5145bd65ULL, 1289, 0x50b1a1c5a7f27652ULL, 0x7f3e7be65691dcfeULL, 0xd144b041baf5f69fULL, 2946800, 0},
    {ProblemId::kPre2, OrderingKind::kNestedDissection, 5000, 0xd2c11c4e5145bd65ULL, 1341, 0xed78be916c855c72ULL, 0x47123a1de82848b6ULL, 0xa7e8000b86e77e9dULL, 2946800, 22},
    {ProblemId::kPre2, OrderingKind::kPord, 0, 0x498e992f4200c7ddULL, 1324, 0xc1decebcb1ef3ac1ULL, 0xdae582cdd485e9d5ULL, 0x53ac2ad245994c62ULL, 5353333, 0},
    {ProblemId::kPre2, OrderingKind::kPord, 5000, 0x498e992f4200c7ddULL, 1362, 0xfe4749a6abfd57a5ULL, 0xd9efe6ee19c047e0ULL, 0xb0fe0d768b615670ULL, 5353333, 16},
    {ProblemId::kPre2, OrderingKind::kAmd, 0, 0xea3ff12c095f4509ULL, 1503, 0x59681d5f18577f13ULL, 0xba7cf5c0b71dcdf1ULL, 0xb81a441f217a386fULL, 12013215, 0},
    {ProblemId::kPre2, OrderingKind::kAmd, 5000, 0xea3ff12c095f4509ULL, 1538, 0x099628c1b905195dULL, 0x1c71699b7c19e790ULL, 0x9175465d829d3eddULL, 12013215, 15},
    {ProblemId::kPre2, OrderingKind::kAmf, 0, 0x224c9a9a8e876c45ULL, 1611, 0x60e7470ed9ef5732ULL, 0x30a68b6aa941a9e8ULL, 0x50747d77c614d615ULL, 9719560, 0},
    {ProblemId::kPre2, OrderingKind::kAmf, 5000, 0x224c9a9a8e876c45ULL, 1647, 0xd04a7b2a5fe6076aULL, 0xfc428d4a39d693e0ULL, 0x4309b02a3aa64572ULL, 9719560, 15},
    {ProblemId::kTwotone, OrderingKind::kNestedDissection, 0, 0x4ef8616c50782ff9ULL, 508, 0xbf40f91074094eceULL, 0xeabd3b9ed0a0f0c9ULL, 0x570492ccc5b3b518ULL, 3200096, 0},
    {ProblemId::kTwotone, OrderingKind::kNestedDissection, 5000, 0x4ef8616c50782ff9ULL, 534, 0x6edb2fd8b4f81529ULL, 0xd775e5dc5e545ef8ULL, 0xdd252c4ac97b3a6aULL, 3200096, 10},
    {ProblemId::kTwotone, OrderingKind::kPord, 0, 0x7d6c075220ef3b49ULL, 533, 0x77e43ce5abd46d33ULL, 0x3b133349c4a5a0e7ULL, 0xef3ffe20877c25d5ULL, 820738, 0},
    {ProblemId::kTwotone, OrderingKind::kPord, 5000, 0x7d6c075220ef3b49ULL, 560, 0x5ca54f7e62aa4cc4ULL, 0x369c04cfaf3110ddULL, 0xadd72dcf5d0a5579ULL, 820738, 11},
    {ProblemId::kTwotone, OrderingKind::kAmd, 0, 0x2d971ed5d3d6ef05ULL, 644, 0xd80be69adc1fb7efULL, 0x36e45c1a6de45891ULL, 0x60d8d204f61a9f1bULL, 3149593, 0},
    {ProblemId::kTwotone, OrderingKind::kAmd, 5000, 0x2d971ed5d3d6ef05ULL, 653, 0xb16c18baed00d773ULL, 0xb3782414c1a5cc67ULL, 0xe79922d30eb27cbfULL, 3149593, 5},
    {ProblemId::kTwotone, OrderingKind::kAmf, 0, 0x630397679672856dULL, 669, 0xdc636ae0d8770820ULL, 0x14865857074f2a5bULL, 0x519b5207062b18f7ULL, 2784327, 0},
    {ProblemId::kTwotone, OrderingKind::kAmf, 5000, 0x630397679672856dULL, 678, 0x0afa13f448290ae3ULL, 0x802f5b96d0883a38ULL, 0x40602a20c3872233ULL, 2784327, 6},
    {ProblemId::kUltrasound3, OrderingKind::kNestedDissection, 0, 0x64862dc7d2d27565ULL, 73, 0x9375c89a200bdb54ULL, 0xc79e7dd50020d36dULL, 0x701b54b663e658d3ULL, 399052, 0},
    {ProblemId::kUltrasound3, OrderingKind::kNestedDissection, 5000, 0x64862dc7d2d27565ULL, 88, 0x343d14d34671f949ULL, 0x9f1dcc53c0351b45ULL, 0x8cb95a5482fdeb8fULL, 399052, 9},
    {ProblemId::kUltrasound3, OrderingKind::kPord, 0, 0x44310e04cd2d0ad5ULL, 70, 0xcc881f562e5ec6d5ULL, 0xa4c01f8f5dc60e64ULL, 0xb4931d1d97d4ebe1ULL, 419620, 0},
    {ProblemId::kUltrasound3, OrderingKind::kPord, 5000, 0x44310e04cd2d0ad5ULL, 90, 0x519d98b06650c9c6ULL, 0x0d627f778f258624ULL, 0x46fa7592a438fd21ULL, 419620, 12},
    {ProblemId::kUltrasound3, OrderingKind::kAmd, 0, 0x1f0a8e64df2e4e3dULL, 75, 0x1ee7a817ef9cd23aULL, 0x0954a79f50538a8eULL, 0xadb91f0561b27ac9ULL, 528160, 0},
    {ProblemId::kUltrasound3, OrderingKind::kAmd, 5000, 0x1f0a8e64df2e4e3dULL, 90, 0x97ab0526d11dfe97ULL, 0xdbef8681a3639744ULL, 0xf96370f9b327214cULL, 528160, 7},
    {ProblemId::kUltrasound3, OrderingKind::kAmf, 0, 0x80ba5f48e64d62d5ULL, 81, 0xcc3f9a5a87d9269bULL, 0x4c7a1ecefdf0de35ULL, 0xd11abaa2b1467f91ULL, 419192, 0},
    {ProblemId::kUltrasound3, OrderingKind::kAmf, 5000, 0x80ba5f48e64d62d5ULL, 93, 0xbb79d56e7fc77b8fULL, 0xeb8ac60d18e70999ULL, 0xfa74807a91c58716ULL, 419192, 6},
    {ProblemId::kXenon2, OrderingKind::kNestedDissection, 0, 0xad8f40a531e56d81ULL, 96, 0x6a4f165a30298603ULL, 0x8a691012751e88e5ULL, 0x69b1f4dc91759996ULL, 339824, 0},
    {ProblemId::kXenon2, OrderingKind::kNestedDissection, 5000, 0xad8f40a531e56d81ULL, 105, 0x6783a8ec3ba535efULL, 0x079a91275f75b0cdULL, 0xb417495dc018e23eULL, 339824, 7},
    {ProblemId::kXenon2, OrderingKind::kPord, 0, 0x40828653e88775d1ULL, 102, 0x8197ceb36c1973b0ULL, 0x229e0cf9858fcce4ULL, 0x9d1d26725b1f9b2bULL, 382453, 0},
    {ProblemId::kXenon2, OrderingKind::kPord, 5000, 0x40828653e88775d1ULL, 117, 0xd3c7f12d0607dd86ULL, 0x95a94664b664fcf1ULL, 0xde42a4031c8707d2ULL, 382453, 12},
    {ProblemId::kXenon2, OrderingKind::kAmd, 0, 0xd02a3da61e068375ULL, 113, 0x61b23488715a71cfULL, 0xab9d2622e8673d35ULL, 0xd3dcc977ea833267ULL, 399661, 0},
    {ProblemId::kXenon2, OrderingKind::kAmd, 5000, 0xd02a3da61e068375ULL, 126, 0xbccc8dbec0c20604ULL, 0x449011a1830a46e4ULL, 0x2e171899069ed841ULL, 399661, 6},
    {ProblemId::kXenon2, OrderingKind::kAmf, 0, 0xaa4967e39099f225ULL, 108, 0x0b33f7dd901f0499ULL, 0xb7b317425e645c65ULL, 0x73941c4e691dacf3ULL, 335312, 0},
    {ProblemId::kXenon2, OrderingKind::kAmf, 5000, 0xaa4967e39099f225ULL, 116, 0xfba3409e8735c0c9ULL, 0xc01fe367a3130de5ULL, 0xcf6830b688b4cebbULL, 335312, 4},
};

class AnalysisGoldenResults
    : public ::testing::TestWithParam<AnalysisGolden> {};

TEST_P(AnalysisGoldenResults, OrderingAndSymbolicAreBitIdentical) {
  const AnalysisGolden& g = GetParam();
  const Problem p = make_problem(g.id, 0.5);
  AnalysisOptions options;
  options.ordering = g.ordering;
  options.symmetric = p.symmetric;
  options.want_structure = false;
  options.split_master_threshold = g.split_threshold;
  const Analysis a = analyze(p.matrix, options);

  EXPECT_EQ(hash_seq(a.perm), g.perm_hash);
  ASSERT_EQ(a.tree.num_nodes(), g.num_nodes);
  std::vector<std::uint64_t> shape;
  shape.reserve(static_cast<std::size_t>(a.tree.num_nodes()) * 3);
  for (index_t i = 0; i < a.tree.num_nodes(); ++i) {
    shape.push_back(static_cast<std::uint64_t>(a.tree.npiv(i)));
    shape.push_back(static_cast<std::uint64_t>(a.tree.nfront(i)));
    shape.push_back(static_cast<std::uint64_t>(
        a.tree.parent(i) == kNone ? ~0ULL : a.tree.parent(i)));
  }
  EXPECT_EQ(hash_seq(shape), g.tree_hash);
  EXPECT_EQ(hash_seq(a.traversal), g.traversal_hash);
  EXPECT_EQ(hash_seq(a.memory.subtree_peak), g.subtree_peak_hash);
  EXPECT_EQ(a.memory.peak, g.sequential_peak);
  EXPECT_EQ(a.num_split_nodes, g.num_split_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblemsAllOrderings, AnalysisGoldenResults,
    ::testing::ValuesIn(kAnalysisGolden), [](const auto& info) {
      return problem_name(info.param.id) + std::string("_") +
             ordering_name(info.param.ordering) +
             (info.param.split_threshold > 0 ? "_split" : "_nosplit");
    });

}  // namespace
}  // namespace memfront
