#!/usr/bin/env python3
"""Compare bench throughput between two builds and fail on regression.

The disabled-overhead gates, both held to the same discipline:

  * MEMFRONT_OBS: span macros compiled in (tracing not enabled at
    runtime) must stay within --threshold of a build with them
    compiled out (MEMFRONT_OBS=OFF).
  * MEMFRONT_FAULTS: fault-injection sites compiled in (no plan armed)
    must stay within --threshold of a build with them compiled out
    (MEMFRONT_FAULTS=OFF).

Both sides take one or more BENCH_*.json files (repeat runs); the best
rate per side is compared, which filters scheduler noise the way
best-of-N timing always has.

usage: check_overhead.py --baseline off1.json [off2.json ...]
                         --candidate on1.json [on2.json ...]
                         [--key single_run_events_per_sec]
                         [--threshold 0.02]
                         [--label obs]
"""
import argparse
import json
import sys


def best_rate(paths, key):
    rates = []
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if key not in doc:
            raise SystemExit(f"{path}: no {key!r} field")
        rates.append(float(doc[key]))
    return max(rates)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", nargs="+", required=True,
                    help="JSON files from the instrumentation-free build")
    ap.add_argument("--candidate", nargs="+", required=True,
                    help="JSON files from the compiled-in-but-disabled build")
    ap.add_argument("--key", default="single_run_events_per_sec")
    ap.add_argument("--threshold", type=float, default=0.02,
                    help="maximum fractional slowdown (default 2%%)")
    ap.add_argument("--label", default="instrumentation",
                    help="which compiled-in feature is being gated "
                         "(obs, faults, ...) -- used in messages only")
    args = ap.parse_args()

    baseline = best_rate(args.baseline, args.key)
    candidate = best_rate(args.candidate, args.key)
    overhead = (baseline - candidate) / baseline
    print(f"[{args.label}] {args.key}: baseline {baseline:,.0f}/s, "
          f"candidate {candidate:,.0f}/s, overhead {overhead:+.2%} "
          f"(threshold {args.threshold:.0%})")
    if overhead > args.threshold:
        print(f"FAIL: disabled-mode {args.label} overhead above threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
