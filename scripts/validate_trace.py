#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs layer.

Checks the envelope (displayTimeUnit + traceEvents array) and, per
event, the fields each phase type requires:

    X (complete slice): name, pid, tid, ts, dur >= 0
    i (instant):        name, pid, tid, ts, s
    C (counter):        name, pid, tid, ts, numeric args
    M (metadata):       name in {process_name, thread_name}, args.name

Exits 0 when the file is loadable in Perfetto / chrome://tracing,
nonzero with a diagnostic otherwise.

usage: validate_trace.py trace.json [trace2.json ...]
"""
import json
import sys

ALLOWED_PHASES = {"X", "i", "C", "M"}
METADATA_NAMES = {"process_name", "thread_name"}


def fail(path, i, msg):
    print(f"{path}: traceEvents[{i}]: {msg}", file=sys.stderr)
    return False


def check_event(path, i, ev):
    if not isinstance(ev, dict):
        return fail(path, i, "event is not an object")
    ph = ev.get("ph")
    if ph not in ALLOWED_PHASES:
        return fail(path, i, f"unknown phase {ph!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        return fail(path, i, "missing/empty name")
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            return fail(path, i, f"missing integer {key}")
    if ph == "M":
        if ev["name"] not in METADATA_NAMES:
            return fail(path, i, f"unknown metadata kind {ev['name']!r}")
        if not isinstance(ev.get("args", {}).get("name"), str):
            return fail(path, i, "metadata without args.name")
        return True
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        return fail(path, i, f"bad ts {ts!r}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            return fail(path, i, f"bad dur {dur!r}")
    if ph == "i" and ev.get("s") not in ("t", "p", "g"):
        return fail(path, i, f"instant without scope: {ev.get('s')!r}")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not args or not all(
            isinstance(v, (int, float)) for v in args.values()
        ):
            return fail(path, i, f"counter without numeric args: {args!r}")
    return True


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return False
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        print(f"{path}: missing/invalid displayTimeUnit", file=sys.stderr)
        return False
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"{path}: traceEvents missing or empty", file=sys.stderr)
        return False
    ok = all(check_event(path, i, ev) for i, ev in enumerate(events))
    if ok:
        slices = sum(1 for e in events if e["ph"] == "X")
        tracks = len({(e["pid"], e["tid"]) for e in events})
        print(f"{path}: OK ({len(events)} events, {slices} slices, "
              f"{tracks} tracks)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return 0 if all([validate(p) for p in argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
